"""Thin locks (Bacon et al.), and the paper's 1-bit variant.

The 24-bit thin lock lives in the object header: 1 bit selects
thin/fat, 8 bits count recursion (up to 256), 15 bits name the owning
thread.  Cases (a) and (b) are handled with a couple of instructions on
the object's own lock word — no global lock, no hash, no chain walk.
Cases (c) and (d) inflate to a fat monitor and pay monitor-cache-like
costs.

The 1-bit variant (Section 5's space optimization) spends a single
header bit and takes the fast path only for case (a); every recursive
or contended acquisition falls back to the fat path.
"""

from __future__ import annotations

from ..native.layout import VM_DATA_BASE
from ..native.nisa import FLAG_SYNC, NCat, REG_ARG0, REG_TMP0, REG_TMP1
from ..native.template import PATCH, TemplateBuilder
from .base import (
    CASE_CONTENDED,
    CASE_DEEP_RECURSIVE,
    CASE_RECURSIVE,
    CASE_UNLOCKED,
    LockManager,
    LockState,
)

#: Fat monitors for inflated thin locks live here.
FAT_MONITOR_BASE = VM_DATA_BASE + 0x4000
FAT_MONITOR_BYTES = 32


class _Templates:
    """pc-stable native templates for the thin-lock fast/slow paths."""

    def __init__(self) -> None:
        # Imported lazily: the VM package itself imports the sync package.
        from ..vm.stubs import shared_stubs
        region = shared_stubs().region

        # Case (a): compare-and-swap the thin lock word.
        b = TemplateBuilder("thin:cas", base_flags=FLAG_SYNC)
        b.load(dst=REG_TMP0, src1=REG_ARG0, ea=PATCH)     # lock word
        b.ialu(dst=REG_TMP1, src1=REG_TMP0, n=3)          # compose tid|count
        b.instr(NCat.BRANCH, src1=REG_TMP1, taken=False, target=b.rel(3))
        b.store(src1=REG_TMP1, src2=REG_ARG0, ea=PATCH)   # CAS success
        b.ialu(dst=REG_TMP1, src1=REG_TMP1, n=3)          # membar / retry check
        self.cas = b.build(region=region)

        # Case (b): owner re-entry, bump the recursion field.
        b = TemplateBuilder("thin:reenter", base_flags=FLAG_SYNC)
        b.load(dst=REG_TMP0, src1=REG_ARG0, ea=PATCH)
        b.ialu(dst=REG_TMP0, src1=REG_TMP0, n=2)
        b.store(src1=REG_TMP0, src2=REG_ARG0, ea=PATCH)
        self.reenter = b.build(region=region)

        # Slow path: operate on the object's fat monitor (cost on the
        # order of a monitor-cache operation, minus the global lock and
        # hash walk — the monitor is reached straight from the header).
        b = TemplateBuilder("thin:fat", base_flags=FLAG_SYNC)
        b.load(dst=REG_TMP0, src1=REG_ARG0, ea=PATCH)     # lock word
        b.ialu(dst=REG_TMP1, src1=REG_TMP0, n=2)
        b.instr(NCat.CALL, target=b.rel(1))               # fat-monitor routine
        b.load(dst=REG_TMP0, src1=REG_TMP1, ea=PATCH)     # monitor state
        b.ialu(dst=REG_TMP0, src1=REG_TMP0)
        b.store(src1=REG_TMP0, src2=REG_TMP1, ea=PATCH)
        b.instr(NCat.RET, target=0)
        self.fat = b.build(region=region)

        # Thin release: clear/decrement the lock word.
        b = TemplateBuilder("thin:release", base_flags=FLAG_SYNC)
        b.load(dst=REG_TMP0, src1=REG_ARG0, ea=PATCH)
        b.ialu(dst=REG_TMP0, src1=REG_TMP0, n=2)          # membar + clear
        b.store(src1=REG_TMP0, src2=REG_ARG0, ea=PATCH)
        self.release = b.build(region=region)


_TPL: _Templates | None = None


def _templates() -> _Templates:
    global _TPL
    if _TPL is None:
        _TPL = _Templates()
    return _TPL


class ThinLockManager(LockManager):
    """24-bit thin locks: fast cases (a)/(b), fat fallback for (c)/(d)."""

    name = "thin-lock"

    #: Extra header bits this design spends per object.
    HEADER_BITS = 24

    def __init__(self) -> None:
        super().__init__()
        self._tpl = _templates()
        self._fat_addr: dict[int, int] = {}
        self._next_fat = FAT_MONITOR_BASE

    def _fat_monitor(self, obj) -> int:
        addr = self._fat_addr.get(obj.lockword_addr)
        if addr is None:
            addr = self._next_fat
            self._next_fat += FAT_MONITOR_BYTES
            self._fat_addr[obj.lockword_addr] = addr
        return addr

    def _emit_fat(self, obj, sink) -> int:
        tpl = self._tpl.fat
        mon = self._fat_monitor(obj)
        lw = obj.lockword_addr
        sink.emit(tpl, (lw, mon, mon, mon + 8, mon + 8))
        return tpl.cycles

    def _acquire_cost(self, obj, case: str, sink) -> int:
        lw = obj.lockword_addr
        if case == CASE_UNLOCKED and not (obj.lock and obj.lock.inflated):
            tpl = self._tpl.cas
            sink.emit(tpl, (lw, lw))
            return tpl.cycles
        if case == CASE_RECURSIVE and not obj.lock.inflated:
            tpl = self._tpl.reenter
            sink.emit(tpl, (lw, lw))
            return tpl.cycles
        # (c), (d), or an already-inflated lock: thin attempt + fat path.
        tpl = self._tpl.cas
        sink.emit(tpl, (lw, lw))
        return tpl.cycles + self._emit_fat(obj, sink)

    def _release_cost(self, obj, state: LockState, sink) -> int:
        if state.inflated:
            return self._emit_fat(obj, sink)
        tpl = self._tpl.release
        lw = obj.lockword_addr
        sink.emit(tpl, (lw, lw))
        return tpl.cycles


class OneBitLockManager(ThinLockManager):
    """The 1-bit header variant: only case (a) takes the fast path."""

    name = "one-bit-lock"
    HEADER_BITS = 1

    def _acquire_cost(self, obj, case: str, sink) -> int:
        lw = obj.lockword_addr
        if case == CASE_UNLOCKED and not (obj.lock and obj.lock.inflated):
            tpl = self._tpl.cas
            sink.emit(tpl, (lw, lw))
            return tpl.cycles
        # Everything else inflates: recursion cannot be expressed in 1 bit.
        if obj.lock is not None:
            obj.lock.inflated = True
        tpl = self._tpl.cas
        sink.emit(tpl, (lw, lw))
        return tpl.cycles + self._emit_fat(obj, sink)

    def _release_cost(self, obj, state: LockState, sink) -> int:
        if state.inflated or state.count > 1:
            return self._emit_fat(obj, sink)
        tpl = self._tpl.release
        lw = obj.lockword_addr
        sink.emit(tpl, (lw, lw))
        return tpl.cycles
