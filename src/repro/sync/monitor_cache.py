"""JDK 1.1.6-style monitor cache.

Sun's JDK 1.1.6 keeps all monitors in a 128-bucket open-hash table (the
*monitor cache*).  Locking any object means: lock the monitor cache
itself, hash the object's handle, walk the bucket chain to the monitor,
perform the monitor operation, unlock the cache.  Space-efficient, but
every operation — even an uncontended lock — pays the global lock and
the hash/chain walk, which is exactly the overhead the paper measures
and the thin-lock design removes.
"""

from __future__ import annotations

from ..native.layout import VM_DATA_BASE
from ..native.nisa import FLAG_SYNC, NCat, REG_ARG0, REG_TMP0, REG_TMP1, REG_TMP2
from ..native.template import PATCH, TemplateBuilder
from .base import CASE_CONTENDED, LockManager, LockState

#: Number of hash buckets in the monitor cache.
N_BUCKETS = 128

#: Simulated address of the monitor cache (inside VM data).
MONITOR_CACHE_BASE = VM_DATA_BASE + 0x1800
#: The global lock guarding the whole cache.
CACHE_LOCK_EA = MONITOR_CACHE_BASE - 8
#: Bytes per monitor structure.
MONITOR_BYTES = 32


class _Templates:
    """pc-stable native templates of the monitor-cache routines."""

    def __init__(self) -> None:
        # Imported lazily: the VM package itself imports the sync package.
        from ..vm.stubs import shared_stubs
        region = shared_stubs().region

        # Lock the monitor cache itself (CAS, usually uncontended).
        b = TemplateBuilder("mcache:global_lock", base_flags=FLAG_SYNC)
        b.load(dst=REG_TMP0, src1=REG_TMP1, ea=CACHE_LOCK_EA)
        b.ialu(dst=REG_TMP0, src1=REG_TMP0)
        b.store(src1=REG_TMP0, src2=REG_TMP1, ea=CACHE_LOCK_EA)
        self.global_lock = b.build(region=region)

        # Hash the handle and load the bucket head.
        b = TemplateBuilder("mcache:hash", base_flags=FLAG_SYNC)
        b.ialu(dst=REG_TMP1, src1=REG_ARG0, n=2)
        b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)    # bucket head
        self.hash_bucket = b.build(region=region)

        # Walk one chain link.
        b = TemplateBuilder("mcache:walk", base_flags=FLAG_SYNC)
        b.load(dst=REG_TMP0, src1=REG_TMP2, ea=PATCH)    # monitor.handle
        b.instr(NCat.BRANCH, src1=REG_TMP0, taken=PATCH, target=b.rel(2))
        b.load(dst=REG_TMP2, src1=REG_TMP2, ea=PATCH)    # monitor.next
        self.walk = b.build(region=region)

        # The monitor operation proper (read-modify-write owner/count).
        b = TemplateBuilder("mcache:op", base_flags=FLAG_SYNC)
        b.load(dst=REG_TMP0, src1=REG_TMP2, ea=PATCH)
        b.ialu(dst=REG_TMP0, src1=REG_TMP0)
        b.store(src1=REG_TMP0, src2=REG_TMP2, ea=PATCH)
        self.monitor_op = b.build(region=region)

        # Unlock the cache.
        b = TemplateBuilder("mcache:global_unlock", base_flags=FLAG_SYNC)
        b.store(src1=0, src2=REG_TMP1, ea=CACHE_LOCK_EA)
        b.instr(NCat.RET, target=(0))
        self.global_unlock = b.build(region=region)


_TPL: _Templates | None = None


def _templates() -> _Templates:
    global _TPL
    if _TPL is None:
        _TPL = _Templates()
    return _TPL


class MonitorCacheLockManager(LockManager):
    """The original JDK 1.1.6 design: every operation goes through the
    globally-locked hash table."""

    name = "monitor-cache"

    def __init__(self) -> None:
        super().__init__()
        self._tpl = _templates()
        self._monitor_addr: dict[int, int] = {}   # lockword_addr -> monitor
        self._bucket_chains: dict[int, list[int]] = {}
        self._next_monitor = MONITOR_CACHE_BASE + 8 * N_BUCKETS

    def _monitor_for(self, obj) -> tuple[int, int, int]:
        """(monitor_addr, bucket_index, chain_position)."""
        key = obj.lockword_addr
        bucket = (key >> 3) % N_BUCKETS
        chain = self._bucket_chains.setdefault(bucket, [])
        addr = self._monitor_addr.get(key)
        if addr is None:
            addr = self._next_monitor
            self._next_monitor += MONITOR_BYTES
            self._monitor_addr[key] = addr
            chain.append(key)
        return addr, bucket, chain.index(key)

    def _cache_walk(self, obj, sink) -> tuple[int, int]:
        """Global lock + hash + chain walk; returns (monitor_addr, cycles)."""
        tpl = self._tpl
        monitor, bucket, position = self._monitor_for(obj)
        cycles = 0
        sink.emit(tpl.global_lock)
        cycles += tpl.global_lock.cycles
        bucket_ea = MONITOR_CACHE_BASE + 8 * bucket
        sink.emit(tpl.hash_bucket, (bucket_ea,))
        cycles += tpl.hash_bucket.cycles
        # Walk to the monitor's position in the chain (last link matches).
        chain = self._bucket_chains[bucket]
        for i in range(position + 1):
            link = self._monitor_addr[chain[i]]
            sink.emit(tpl.walk, (link, link + 4), (i == position,))
            cycles += tpl.walk.cycles
        return monitor, cycles

    def _acquire_cost(self, obj, case: str, sink) -> int:
        monitor, cycles = self._cache_walk(obj, sink)
        tpl = self._tpl
        sink.emit(tpl.monitor_op, (monitor + 8, monitor + 8))
        cycles += tpl.monitor_op.cycles
        if case == CASE_CONTENDED:
            # Enqueue on the monitor's wait list before giving up the cache.
            sink.emit(tpl.monitor_op, (monitor + 16, monitor + 16))
            cycles += tpl.monitor_op.cycles
        sink.emit(tpl.global_unlock)
        cycles += tpl.global_unlock.cycles
        return cycles

    def _release_cost(self, obj, state: LockState, sink) -> int:
        monitor, cycles = self._cache_walk(obj, sink)
        tpl = self._tpl
        sink.emit(tpl.monitor_op, (monitor + 8, monitor + 8))
        cycles += tpl.monitor_op.cycles
        sink.emit(tpl.global_unlock)
        cycles += tpl.global_unlock.cycles
        return cycles
