"""Lock-manager infrastructure shared by all synchronization designs.

The paper classifies monitor acquisitions into four cases:

- **(a)** locking an unlocked object,
- **(b)** recursive locking by the owner, depth < 256,
- **(c)** recursive locking by the owner, depth >= 256,
- **(d)** locking an object owned by another thread (the only
  contended case).

Every lock manager classifies identically (the distribution of Figure
11(i) is a property of the workload); they differ in the native work —
and therefore cycles — each case costs (Figure 11(ii)).
"""

from __future__ import annotations

from ..native.nisa import FLAG_SYNC

#: Recursion threshold separating cases (b) and (c).
RECURSION_LIMIT = 256

CASE_UNLOCKED = "a"
CASE_RECURSIVE = "b"
CASE_DEEP_RECURSIVE = "c"
CASE_CONTENDED = "d"
ALL_CASES = (CASE_UNLOCKED, CASE_RECURSIVE, CASE_DEEP_RECURSIVE, CASE_CONTENDED)


class LockState:
    """Per-object lock word / monitor state."""

    __slots__ = ("owner", "count", "inflated")

    def __init__(self) -> None:
        self.owner: int | None = None   # owning thread id
        self.count = 0                  # recursion depth
        self.inflated = False           # escalated to a fat monitor

    def __repr__(self) -> str:
        return f"LockState(owner={self.owner}, count={self.count}, fat={self.inflated})"


class SyncStats:
    """Synchronization accounting for one VM run."""

    def __init__(self) -> None:
        self.case_counts = {c: 0 for c in ALL_CASES}
        self.acquire_ops = 0
        self.release_ops = 0
        self.cycles = 0
        self.objects_locked: set[int] = set()
        # Escape-analysis lock elision (acquisitions/releases that never
        # reached the lock manager, bucketed by the case they would have
        # been; violations = foreign thread touched a mid-elision object).
        self.elided_acquires = 0
        self.elided_releases = 0
        self.elided_case_counts = {c: 0 for c in ALL_CASES}
        self.elision_violations = 0

    @property
    def total_ops(self) -> int:
        return self.acquire_ops + self.release_ops

    def case_fractions(self) -> dict[str, float]:
        total = sum(self.case_counts.values()) or 1
        return {c: n / total for c, n in self.case_counts.items()}

    def snapshot(self) -> dict:
        return {
            "case_counts": dict(self.case_counts),
            "acquire_ops": self.acquire_ops,
            "release_ops": self.release_ops,
            "cycles": self.cycles,
            "distinct_objects": len(self.objects_locked),
            "elided_acquires": self.elided_acquires,
            "elided_releases": self.elided_releases,
            "elided_case_counts": dict(self.elided_case_counts),
            "elision_violations": self.elision_violations,
        }


def classify(state: LockState | None, thread_id: int) -> str:
    """Which of the paper's four cases this acquisition attempt is."""
    if state is None or state.count == 0:
        return CASE_UNLOCKED
    if state.owner == thread_id:
        if state.count < RECURSION_LIMIT:
            return CASE_RECURSIVE
        return CASE_DEEP_RECURSIVE
    return CASE_CONTENDED


class LockManager:
    """Interface the VM's monitorenter/monitorexit path uses.

    Subclasses implement :meth:`_acquire_cost` / :meth:`_release_cost`,
    emitting their native work into the sink and returning cycles.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.stats = SyncStats()

    # -- protocol ---------------------------------------------------------
    def acquire(self, thread_id: int, obj, sink) -> tuple[bool, str]:
        """Attempt to lock ``obj``; returns (acquired, case)."""
        state = obj.lock
        case = classify(state, thread_id)
        self.stats.acquire_ops += 1
        self.stats.case_counts[case] += 1
        self.stats.objects_locked.add(obj.lockword_addr)
        self.stats.cycles += self._acquire_cost(obj, case, sink)
        if case == CASE_CONTENDED:
            return False, case
        if state is None:
            state = obj.lock = LockState()
        state.owner = thread_id
        state.count += 1
        if case == CASE_DEEP_RECURSIVE:
            state.inflated = True
        return True, case

    def release(self, thread_id: int, obj, sink) -> None:
        state = obj.lock
        if state is None or state.owner != thread_id or state.count <= 0:
            raise RuntimeError(
                f"thread {thread_id} releasing a monitor it does not own: {state}"
            )
        self.stats.release_ops += 1
        self.stats.cycles += self._release_cost(obj, state, sink)
        state.count -= 1
        if state.count == 0:
            state.owner = None

    # -- cost hooks ---------------------------------------------------------
    def _acquire_cost(self, obj, case: str, sink) -> int:
        raise NotImplementedError

    def _release_cost(self, obj, state: LockState, sink) -> int:
        raise NotImplementedError


def sync_flags() -> int:
    """Flag bits for lock-manager trace templates."""
    return FLAG_SYNC
