"""Synchronization designs: JDK monitor cache, thin locks, 1-bit locks."""

from .base import (
    ALL_CASES,
    CASE_CONTENDED,
    CASE_DEEP_RECURSIVE,
    CASE_RECURSIVE,
    CASE_UNLOCKED,
    RECURSION_LIMIT,
    LockManager,
    LockState,
    SyncStats,
    classify,
)
from .monitor_cache import MonitorCacheLockManager
from .thinlock import OneBitLockManager, ThinLockManager

LOCK_MANAGERS = {
    "monitor-cache": MonitorCacheLockManager,
    "thin-lock": ThinLockManager,
    "one-bit-lock": OneBitLockManager,
}

__all__ = [
    "ALL_CASES",
    "CASE_CONTENDED",
    "CASE_DEEP_RECURSIVE",
    "CASE_RECURSIVE",
    "CASE_UNLOCKED",
    "LOCK_MANAGERS",
    "LockManager",
    "LockState",
    "MonitorCacheLockManager",
    "OneBitLockManager",
    "RECURSION_LIMIT",
    "SyncStats",
    "ThinLockManager",
    "classify",
]
