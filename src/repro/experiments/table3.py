"""Table 3 — L1 cache references and misses per benchmark and mode.

64 KB caches, 32-byte lines, 2-way I / 4-way D — the paper's exact
geometry.  Key shapes: interpreter I-cache hit rates above 99.9 %;
JIT-mode data references only a fraction (10-80 %) of the interpreter's;
yet the JIT's *absolute* miss counts are higher in both caches.
"""

from __future__ import annotations

from ..analysis.parallel import trace_jobs
from ..analysis.replay import get_replay
from ..arch.caches import simulate_split_l1
from ..workloads.base import SPEC_BENCHMARKS
from .base import ExperimentResult, experiment


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    return trace_jobs(benchmarks or SPEC_BENCHMARKS, scale)


@experiment("table3", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    benchmarks = benchmarks or SPEC_BENCHMARKS
    rows = []
    shape_hits = 0
    shape_total = 0
    for name in benchmarks:
        per_mode = {}
        for mode in ("interp", "jit"):
            trace = get_replay(name, scale, mode)
            res = simulate_split_l1(trace)
            per_mode[mode] = res
            rows.append([
                name, mode,
                res.icache.total_refs, res.icache.total_misses,
                round(100 * res.icache.miss_rate, 3),
                res.dcache.total_refs, res.dcache.total_misses,
                round(100 * res.dcache.miss_rate, 3),
            ])
        interp, jit = per_mode["interp"], per_mode["jit"]
        shape_total += 1
        if (jit.icache.total_misses >= interp.icache.total_misses
                and jit.dcache.total_refs < interp.dcache.total_refs):
            shape_hits += 1
    return ExperimentResult(
        "table3",
        "Cache performance, 64K/32B lines (I: 2-way, D: 4-way)",
        ["benchmark", "mode", "I refs", "I misses", "I miss %",
         "D refs", "D misses", "D miss %"],
        rows,
        paper_claim=(
            "Interpreter I-cache hit rates >99.9%; JIT D-references are "
            "10-80% of the interpreter's; absolute JIT misses exceed "
            "interpreter misses despite fewer references."
        ),
        observed=(
            f"{shape_hits}/{shape_total} benchmarks show the "
            "more-misses-despite-fewer-references JIT shape"
        ),
    )
