"""Experiment protocol: each paper table/figure is one module.

Every experiment module exposes ``run(scale=..., benchmarks=...) ->
ExperimentResult`` and registers itself under its paper id (``fig1``,
``table2``...).  Results carry the rows the paper reports plus an ASCII
rendering, and record the paper's expected shape for EXPERIMENTS.md.

Experiments additionally *declare* the measurements they will perform
as a job list (``@experiment("fig3", jobs=_jobs)``) — spawn-safe
:class:`~repro.analysis.parallel.Job` descriptors the CLI can fan out
over a worker pool to pre-warm the shared content-addressed cache
before the (deterministic) serial rendering pass.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..analysis.report import format_table


class ExperimentResult:
    """Rows + rendering for one reproduced table/figure."""

    def __init__(
        self,
        exp_id: str,
        title: str,
        headers: Sequence[str],
        rows: Sequence[Sequence],
        paper_claim: str = "",
        observed: str = "",
        extra: str = "",
    ) -> None:
        self.exp_id = exp_id
        self.title = title
        self.headers = list(headers)
        self.rows = [list(r) for r in rows]
        self.paper_claim = paper_claim
        self.observed = observed
        self.extra = extra

    def render(self) -> str:
        parts = [format_table(self.headers, self.rows,
                              title=f"[{self.exp_id}] {self.title}")]
        if self.extra:
            parts.append(self.extra)
        if self.paper_claim:
            parts.append(f"paper claim : {self.paper_claim}")
        if self.observed:
            parts.append(f"observed    : {self.observed}")
        return "\n\n".join(parts)

    def to_dict(self) -> dict:
        return {
            "id": self.exp_id,
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
            "paper_claim": self.paper_claim,
            "observed": self.observed,
        }

    def row_map(self, key_col: int = 0) -> dict:
        return {r[key_col]: r for r in self.rows}

    def __repr__(self) -> str:
        return f"ExperimentResult({self.exp_id}, {len(self.rows)} rows)"


_REGISTRY: dict[str, Callable] = {}


def _no_jobs(scale: str = "s1", benchmarks=None) -> list:
    return []


def experiment(exp_id: str, jobs: Callable | None = None):
    """Register an experiment ``run`` function under a paper id.

    ``jobs(scale=..., benchmarks=...)`` declares the Job descriptors the
    run will need, so a scheduler can compute them in parallel first.
    """

    def deco(fn):
        fn.exp_id = exp_id
        fn.jobs = jobs or _no_jobs
        _REGISTRY[exp_id] = fn
        return fn

    return deco


def jobs_for(exp_id: str, scale: str = "s1", benchmarks=None) -> list:
    """The declared job list of one experiment."""
    return list(get_experiment(exp_id).jobs(scale=scale,
                                            benchmarks=benchmarks))


def collect_jobs(exp_ids, scale: str = "s1", benchmarks=None) -> list:
    """Deduplicated union of the job lists of several experiments."""
    from ..analysis.parallel import dedupe

    jobs = []
    for exp_id in exp_ids:
        jobs.extend(jobs_for(exp_id, scale=scale, benchmarks=benchmarks))
    return dedupe(jobs)


def get_experiment(exp_id: str) -> Callable:
    _ensure_imported()
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_experiments() -> dict[str, Callable]:
    _ensure_imported()
    return dict(_REGISTRY)


def _ensure_imported() -> None:
    from . import (  # noqa: F401
        fig1,
        fig2,
        locality,
        scale_study,
        fig3,
        fig4,
        fig5,
        fig6,
        fig7,
        fig8,
        fig9,
        fig10,
        fig11,
        table1,
        table2,
        table3,
        ablations,
        tiered,
        codecache,
    )
