"""Figure 9 — instruction-level parallelism: IPC at several issue widths.

The paper's findings: interpreter-mode IPC is *higher* than JIT-mode IPC
(better caches + streamable unoptimized code), the JIT is "not
significantly worse", and the interpreter's gains shrink as width grows
because the dispatch switch's unpredictable target gates fetch.
"""

from __future__ import annotations

from ..analysis.parallel import trace_jobs
from ..analysis.replay import get_replay
from ..arch.pipeline import ipc_by_width
from ..workloads.base import SPEC_BENCHMARKS
from .base import ExperimentResult, experiment

WIDTHS = (1, 2, 4, 8)


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    return trace_jobs(benchmarks or SPEC_BENCHMARKS, scale)


@experiment("fig9", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    benchmarks = benchmarks or SPEC_BENCHMARKS
    rows = []
    interp_higher = 0
    comparisons = 0
    flattening = 0
    for name in benchmarks:
        per_mode = {}
        for mode in ("interp", "jit"):
            trace = get_replay(name, scale, mode)
            results = ipc_by_width(trace, widths=WIDTHS)
            ipcs = [results[w].ipc for w in WIDTHS]
            per_mode[mode] = ipcs
            rows.append([name, mode] + [round(v, 2) for v in ipcs]
                        + [results[WIDTHS[-1]].mispredicts])
        comparisons += len(WIDTHS)
        interp_higher += sum(
            1 for a, b in zip(per_mode["interp"], per_mode["jit"]) if a >= b
        )
        # Interpreter scaling: gain from 4-wide to 8-wide smaller than
        # the gain from 1-wide to 2-wide.
        gain_12 = per_mode["interp"][1] - per_mode["interp"][0]
        gain_48 = per_mode["interp"][3] - per_mode["interp"][2]
        if gain_48 < gain_12:
            flattening += 1
    return ExperimentResult(
        "fig9",
        "IPC at issue widths 1/2/4/8",
        ["benchmark", "mode", "ipc@1", "ipc@2", "ipc@4", "ipc@8",
         "mispredicts@8"],
        rows,
        paper_claim=(
            "Interpreter IPC exceeds JIT IPC (JIT not significantly worse); "
            "interpreter improvement diminishes at wide issue because of "
            "poor switch-target prediction."
        ),
        observed=(
            f"interp IPC >= jit IPC in {interp_higher}/{comparisons} "
            f"(benchmark, width) points; interp scaling flattens for "
            f"{flattening}/{len(benchmarks)} benchmarks"
        ),
    )
