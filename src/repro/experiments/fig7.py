"""Figure 7 — effect of associativity (8 KB caches, 32-byte lines).

Sweeping associativity 1/2/4/8: misses drop with associativity, with
the largest step from direct-mapped to 2-way.
"""

from __future__ import annotations

from ..analysis.parallel import trace_jobs
from ..analysis.replay import get_replay
from ..arch.caches import simulate_split_l1
from ..workloads.base import SPEC_BENCHMARKS
from .base import ExperimentResult, experiment

ASSOCS = (1, 2, 4, 8)


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    return trace_jobs(benchmarks or SPEC_BENCHMARKS, scale)


@experiment("fig7", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    benchmarks = benchmarks or SPEC_BENCHMARKS
    rows = []
    step_1_2 = []
    step_2_4 = []
    for name in benchmarks:
        for mode in ("interp", "jit"):
            trace = get_replay(name, scale, mode)
            i_rates, d_rates = [], []
            for assoc in ASSOCS:
                res = simulate_split_l1(
                    trace,
                    icache={"size": 8 << 10, "assoc": assoc},
                    dcache={"size": 8 << 10, "assoc": assoc},
                )
                i_rates.append(res.icache.miss_rate)
                d_rates.append(res.dcache.miss_rate)
            rows.append(
                [name, mode]
                + [round(100 * r, 3) for r in i_rates]
                + [round(100 * r, 3) for r in d_rates]
            )
            if d_rates[0] > 0:
                step_1_2.append(d_rates[0] - d_rates[1])
                step_2_4.append(d_rates[1] - d_rates[2])
    biggest_first = sum(step_1_2) >= sum(step_2_4)
    return ExperimentResult(
        "fig7",
        "Associativity sweep, 8K caches, 32B lines (miss %)",
        ["benchmark", "mode",
         "I 1w", "I 2w", "I 4w", "I 8w",
         "D 1w", "D 2w", "D 4w", "D 8w"],
        rows,
        paper_claim=(
            "Increasing associativity reduces misses; the most pronounced "
            "reduction is from 1-way to 2-way."
        ),
        observed=(
            f"aggregate D-miss reduction 1->2 way "
            f"{'>=':s} 2->4 way: {biggest_first}"
        ),
    )
