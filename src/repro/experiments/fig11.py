"""Figure 11 — synchronization: lock-case mix and thin-lock speedup.

(i)  Classification of monitor acquisitions into the paper's four
     cases: (a) unlocked, (b) shallow recursive, (c) deep recursive,
     (d) contended.  Cases (a)+(b) dominate, with (a) above 80 %.
(ii) Time spent in synchronization under the JDK 1.1.6 monitor cache
     vs thin locks — the thin lock's ~2x speedup — plus the 1-bit
     variant that fast-paths only case (a).
"""

from __future__ import annotations

from ..analysis.parallel import run_job
from ..analysis.runner import run_vm
from ..sync.base import ALL_CASES
from ..workloads.base import SPEC_BENCHMARKS
from .base import ExperimentResult, experiment

_MANAGERS = ("monitor-cache", "thin-lock", "one-bit-lock")


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    return [run_job(n, scale, "jit", lock_manager=mgr, profile=False)
            for n in benchmarks or SPEC_BENCHMARKS
            for mgr in _MANAGERS]


@experiment("fig11", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    benchmarks = benchmarks or SPEC_BENCHMARKS
    rows = []
    speedups = []
    case_a = []
    for name in benchmarks:
        per_mgr = {}
        for mgr in _MANAGERS:
            result = run_vm(name, scale=scale, mode="jit",
                            lock_manager=mgr, profile=False)
            per_mgr[mgr] = result
        mc = per_mgr["monitor-cache"]
        tl = per_mgr["thin-lock"]
        ob = per_mgr["one-bit-lock"]
        counts = mc.sync["case_counts"]
        total_cases = sum(counts.values()) or 1
        fracs = {c: counts[c] / total_cases for c in ALL_CASES}
        speedup = mc.sync_cycles / max(1, tl.sync_cycles)
        speedup_1bit = mc.sync_cycles / max(1, ob.sync_cycles)
        sync_share = mc.sync_cycles / max(1, mc.cycles)
        rows.append([
            name,
            round(100 * fracs["a"], 1),
            round(100 * fracs["b"], 1),
            round(100 * fracs["c"], 2),
            round(100 * fracs["d"], 2),
            mc.sync["acquire_ops"],
            round(100 * sync_share, 1),
            round(speedup, 2),
            round(speedup_1bit, 2),
        ])
        speedups.append(speedup)
        case_a.append(fracs["a"])
    mean_speedup = sum(speedups) / len(speedups)
    return ExperimentResult(
        "fig11",
        "Lock-case distribution and thin-lock speedup (JIT mode)",
        ["benchmark", "case a %", "case b %", "case c %", "case d %",
         "acquires", "sync share of time %",
         "thin-lock speedup", "1-bit speedup"],
        rows,
        paper_claim=(
            "Cases (a)/(b) dominate, (a) alone >80%; thin locks speed "
            "synchronization up ~2x over the monitor cache; a 1-bit lock "
            "still fast-paths >80% of acquisitions; sync is ~10-20% of "
            "JIT-mode time (less for compute-bound codes)."
        ),
        observed=(
            f"mean thin-lock speedup {mean_speedup:.2f}x; "
            f"case (a) share {100 * min(case_a):.0f}%.."
            f"{100 * max(case_a):.0f}%"
        ),
    )
