"""Table 2 — branch misprediction rates for four predictors.

2-bit / 1-level BHT / Gshare / GAp, per benchmark and execution mode.
The paper's headline: interpreter-mode prediction is significantly
worse (Gshare accuracy only 65-87 %) than JIT mode (80-92 %), due to
the dispatch switch's indirect jumps.
"""

from __future__ import annotations

from ..analysis.parallel import trace_jobs
from ..analysis.replay import get_replay
from ..arch.branch import compare_predictors
from ..workloads.base import SPEC_BENCHMARKS
from .base import ExperimentResult, experiment

PREDICTOR_ORDER = ("2bit", "bht", "gshare", "gap")


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    return trace_jobs(benchmarks or SPEC_BENCHMARKS, scale)


@experiment("table2", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    benchmarks = benchmarks or SPEC_BENCHMARKS
    rows = []
    gshare_rates = {"interp": [], "jit": []}
    for name in benchmarks:
        for mode in ("interp", "jit"):
            trace = get_replay(name, scale, mode)
            results = compare_predictors(trace, names=PREDICTOR_ORDER)
            row = [name, mode]
            for pname in PREDICTOR_ORDER:
                res = results[pname]
                row.append(round(100 * res.misprediction_rate, 1))
                if pname == "gshare":
                    gshare_rates[mode].append(res.misprediction_rate)
            row.append(round(100 * res.indirect_rate, 1))
            rows.append(row)
    avg_i = 100 * sum(gshare_rates["interp"]) / len(gshare_rates["interp"])
    avg_j = 100 * sum(gshare_rates["jit"]) / len(gshare_rates["jit"])
    return ExperimentResult(
        "table2",
        "Branch misprediction rates (% of control transfers)",
        ["benchmark", "mode", "2bit", "bht", "gshare", "gap",
         "indirect-target miss %"],
        rows,
        paper_claim=(
            "Gshare/GAp are the best predictors; interpreter-mode "
            "misprediction (13-35% for Gshare) is far worse than JIT mode "
            "(8-20%), driven by indirect dispatch jumps."
        ),
        observed=(
            f"mean gshare misprediction: interp {avg_i:.1f}% vs "
            f"jit {avg_j:.1f}%"
        ),
    )
