"""Figure 8 — effect of line size (8 KB direct-mapped caches).

Line sizes 16/32/64/128 bytes.  Instruction caches like longer lines;
data caches diverge by mode: interpreted code (tiny methods, ~1.8-byte
bytecodes read as data) favours 16-byte lines in most benchmarks, while
JIT mode (object accesses of 16-42 bytes) favours 32-64 bytes.
"""

from __future__ import annotations

from ..analysis.parallel import trace_jobs
from ..analysis.replay import get_replay
from ..arch.caches import simulate_split_l1
from ..workloads.base import SPEC_BENCHMARKS
from .base import ExperimentResult, experiment

LINE_SIZES = (16, 32, 64, 128)


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    return trace_jobs(benchmarks or SPEC_BENCHMARKS, scale)


@experiment("fig8", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    benchmarks = benchmarks or SPEC_BENCHMARKS
    rows = []
    interp_small_best = 0
    jit_mid_best = 0
    for name in benchmarks:
        for mode in ("interp", "jit"):
            trace = get_replay(name, scale, mode)
            i_rates, d_rates = [], []
            for block in LINE_SIZES:
                res = simulate_split_l1(
                    trace,
                    icache={"size": 8 << 10, "assoc": 1, "block": block},
                    dcache={"size": 8 << 10, "assoc": 1, "block": block},
                )
                i_rates.append(res.icache.miss_rate)
                d_rates.append(res.dcache.miss_rate)
            best = LINE_SIZES[d_rates.index(min(d_rates))]
            if mode == "interp" and best <= 32:
                interp_small_best += 1
            if mode == "jit" and 32 <= best <= 64:
                jit_mid_best += 1
            rows.append(
                [name, mode]
                + [round(100 * r, 3) for r in i_rates]
                + [round(100 * r, 3) for r in d_rates]
                + [best]
            )
    return ExperimentResult(
        "fig8",
        "Line-size sweep, 8K direct-mapped (miss %)",
        ["benchmark", "mode",
         "I 16", "I 32", "I 64", "I 128",
         "D 16", "D 32", "D 64", "D 128", "best D line"],
        rows,
        paper_claim=(
            "I-caches improve with longer lines; interpreted-mode D-caches "
            "prefer small (16B) lines in 6 of 7 benchmarks; JIT-mode "
            "D-caches prefer 32-64B lines in the majority."
        ),
        observed=(
            f"interp best-line <=32B for {interp_small_best}/{len(benchmarks)}; "
            f"jit best-line 32-64B for {jit_mid_best}/{len(benchmarks)}"
        ),
    )
