"""Command-line entry point: ``python -m repro.experiments <ids...>``.

Regenerates any of the paper's tables/figures (or all of them) and
prints the rows the paper reports.

With ``--jobs N`` the declared (workload, scale, mode, config) job
lists of the selected experiments are deduplicated and fanned out over
``N`` worker processes to pre-warm the shared content-addressed cache;
the rendering pass then runs serially against a warm cache, so parallel
output is identical to a serial run.  Every invocation ends with the
cache hit/miss/latency summary.

``--faults`` (or ``$REPRO_FAULTS``) activates the deterministic
fault-injection layer (:mod:`repro.faults`); the hardened scheduler and
cache recover via retries, pool replacement, lock breaking, and
quarantine, so a faulted run still exits 0 with byte-identical JSON —
the run manifest records what was injected and recovered.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import traceback

from .. import faults, obs
from ..analysis import cache
from ..analysis.parallel import RetryPolicy, run_jobs
from .base import all_experiments, collect_jobs, get_experiment

#: Order used by ``all``: cheap scalar experiments first.
DEFAULT_ORDER = (
    "fig1", "table1", "fig2", "fig11",
    "table2", "table3", "fig3", "fig4", "fig5", "fig6",
    "fig7", "fig8", "fig9", "fig10",
    "locality", "scale_study", "tiered",
    "ablation_strategy", "ablation_tiered", "ablation_install",
    "ablation_locks",
    "ablation_inline", "ablation_indirect", "ablation_folding",
    "ablation_victim",
)


def _progress(i: int, total: int, outcome: dict) -> None:
    job = outcome["job"]
    stats = outcome["stats"]
    computed = (stats.get("trace_misses", 0) + stats.get("run_misses", 0)) > 0
    note = "computed" if computed else "cached"
    if outcome.get("recovery"):
        note += f" (recovered: {outcome['recovery']})"
    if outcome["error"]:
        note = f"ERROR {outcome['error']}"
    print(f"[{i:3d}/{total}] {job.describe():44s} "
          f"{outcome['seconds']:6.1f}s  {note}", flush=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce tables/figures from 'Architectural Issues in "
            "Java Runtime Systems' (HPCA 2000)."
        ),
    )
    parser.add_argument(
        "ids", nargs="*", default=["all"],
        help="experiment ids (fig1..fig11, table1..table3, ablation_*) "
             "or 'all' / 'list'",
    )
    parser.add_argument("--scale", default="s1", choices=("s0", "s1", "s10"),
                        help="workload input scale (default s1)")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the cache pre-warm pass "
                             "(default 1 = fully serial)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="trace/result cache directory (default: "
                             "$REPRO_TRACE_CACHE or .trace_cache; "
                             "'' disables caching)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also dump all results as JSON (plus a "
                             "run manifest next to it)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="record span/counter events and write them "
                             "as JSONL (also enabled by $REPRO_OBS)")
    parser.add_argument("--faults", default=None, metavar="PLAN",
                        help="activate a seeded fault-injection plan, "
                             "e.g. 'worker-kill@1;seed=7' (also read "
                             "from $REPRO_FAULTS; see docs/robustness.md)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock timeout per pre-warm job; a "
                             "stuck worker is replaced and the job "
                             "retried (default: $REPRO_JOB_TIMEOUT "
                             "or none)")
    args = parser.parse_args(argv)

    if args.faults:
        try:
            # Export so spawned pool workers inherit the same plan.
            os.environ[faults.ENV_VAR] = args.faults
            faults.activate(args.faults)
        except faults.PlanError as exc:
            print(f"bad --faults plan: {exc}", file=sys.stderr)
            return 2
    else:
        # Re-read the env var each invocation: main() may be called
        # repeatedly in-process (tests), and budgets must be fresh.
        faults.activate_from_env()

    trace_path = args.trace or os.environ.get("REPRO_OBS") or None
    if trace_path:
        obs.TRACER.enable()
        obs.TRACER.reset()  # scope the stream to this invocation

    if args.cache_dir is not None:
        # Call-time resolution means the whole run (and its spawned
        # workers, which inherit the environment) picks this up.
        os.environ["REPRO_TRACE_CACHE"] = args.cache_dir

    available = all_experiments()
    if args.ids == ["list"] or args.ids == []:
        for exp_id in DEFAULT_ORDER:
            print(exp_id)
        return 0
    ids = list(args.ids)
    if ids == ["all"]:
        ids = [e for e in DEFAULT_ORDER if e in available]

    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    cache.reset_stats()
    faults.LEDGER.reset()  # manifest reports this invocation only
    # Each CLI invocation should hit the on-disk cache afresh so the
    # run summary reflects this run, not a previous in-process one.
    from ..analysis.replay import clear_replay_memo
    clear_replay_memo()
    status = 0

    known_ids = [e for e in ids if e in available]
    prewarm = None
    if args.jobs > 1 and known_ids:
        jobs = collect_jobs(known_ids, scale=args.scale,
                            benchmarks=benchmarks)
        if jobs:
            policy = RetryPolicy.from_env()
            if args.job_timeout is not None:
                import dataclasses
                policy = dataclasses.replace(
                    policy, job_timeout=args.job_timeout or None)
            print(f"pre-warming cache: {len(jobs)} jobs on "
                  f"{args.jobs} workers")
            prewarm = run_jobs(jobs, max_workers=args.jobs,
                               cache_dir=args.cache_dir,
                               progress=_progress, policy=policy)
            print(f"pre-warm: {prewarm.format_summary()}")
            print()
            for outcome in prewarm.errors:
                print(f"pre-warm error in {outcome['job'].describe()}: "
                      f"{outcome['error']}", file=sys.stderr)
            if prewarm.errors:
                # Retries, pool replacement, and the serial fallback
                # have all been exhausted for these jobs; the rendering
                # pass below may still succeed (it recomputes inline),
                # but the run must report the infrastructure failure.
                status = status or 1

    collected = []
    ran = []          # per-experiment manifest entries, in run order
    failures = []
    for exp_id in ids:
        try:
            fn = get_experiment(exp_id)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            status = 2
            ran.append({"id": exp_id, "seconds": 0.0, "error": str(exc)})
            continue
        # perf_counter, matching the rest of the stack, so these
        # durations are comparable with span/manifest timings.
        started = time.perf_counter()
        try:
            with obs.TRACER.span("experiment", id=exp_id):
                result = fn(scale=args.scale, benchmarks=benchmarks)
        except Exception as exc:  # noqa: BLE001 - one failure must not
            # abort the CLI: report it, keep the collected results, and
            # still emit JSON + manifest below.
            elapsed = time.perf_counter() - started
            entry = {"id": exp_id, "seconds": round(elapsed, 3),
                     "error": f"{type(exc).__name__}: {exc}"}
            ran.append(entry)
            failures.append(entry)
            status = status or 1
            traceback.print_exc()
            print(f"ERROR: {exp_id} failed after {elapsed:.1f}s: "
                  f"{entry['error']}", file=sys.stderr)
            continue
        elapsed = time.perf_counter() - started
        ran.append({"id": exp_id, "seconds": round(elapsed, 3),
                    "error": None})
        collected.append(result)
        print(result.render())
        print(f"({exp_id} completed in {elapsed:.1f}s)")
        print()
    if args.json:
        import json
        with open(args.json, "w") as fh:
            json.dump([r.to_dict() for r in collected], fh, indent=2)
        print(f"wrote {len(collected)} results to {args.json}")

    totals = cache.CacheStats()
    totals.merge(cache.STATS.snapshot())
    if prewarm is not None:
        totals.merge(prewarm.stats.snapshot())

    if args.json:
        manifest = obs.build_manifest(
            "repro.experiments",
            argv=argv if argv is not None else sys.argv[1:],
            experiments=ran,
            cache_stats=totals.snapshot(),
            extra={"ids": ids, "scale": args.scale,
                   "benchmarks": benchmarks, "jobs": args.jobs,
                   "prewarm": None if prewarm is None else {
                       "jobs": len(prewarm.outcomes),
                       "errors": len(prewarm.errors),
                       "retries": prewarm.retries,
                       "pool_replacements": prewarm.pool_replacements,
                       "serial_recoveries": prewarm.serial_recoveries,
                   }},
        )
        manifest_path = obs.manifest_path_for(args.json)
        obs.write_manifest(manifest_path, manifest)
        print(f"wrote manifest to {manifest_path}")
    if trace_path:
        n_events = obs.write_events(trace_path)
        print(f"wrote {n_events} events to {trace_path}")

    if failures:
        print(f"{len(failures)} experiment(s) failed: "
              + ", ".join(f["id"] for f in failures), file=sys.stderr)
    print(f"run summary: {totals.format_summary()}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
