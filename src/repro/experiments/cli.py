"""Command-line entry point: ``python -m repro.experiments <ids...>``.

Regenerates any of the paper's tables/figures (or all of them) and
prints the rows the paper reports.

With ``--jobs N`` the declared (workload, scale, mode, config) job
lists of the selected experiments are deduplicated and fanned out over
``N`` worker processes to pre-warm the shared content-addressed cache;
the rendering pass then runs serially against a warm cache, so parallel
output is identical to a serial run.  Every invocation ends with the
cache hit/miss/latency summary.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from ..analysis import cache
from ..analysis.parallel import run_jobs
from .base import all_experiments, collect_jobs, get_experiment

#: Order used by ``all``: cheap scalar experiments first.
DEFAULT_ORDER = (
    "fig1", "table1", "fig2", "fig11",
    "table2", "table3", "fig3", "fig4", "fig5", "fig6",
    "fig7", "fig8", "fig9", "fig10",
    "locality", "scale_study",
    "ablation_strategy", "ablation_install", "ablation_locks",
    "ablation_inline", "ablation_indirect", "ablation_folding",
    "ablation_victim",
)


def _progress(i: int, total: int, outcome: dict) -> None:
    job = outcome["job"]
    stats = outcome["stats"]
    computed = (stats.get("trace_misses", 0) + stats.get("run_misses", 0)) > 0
    note = "computed" if computed else "cached"
    if outcome["error"]:
        note = f"ERROR {outcome['error']}"
    print(f"[{i:3d}/{total}] {job.describe():44s} "
          f"{outcome['seconds']:6.1f}s  {note}", flush=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce tables/figures from 'Architectural Issues in "
            "Java Runtime Systems' (HPCA 2000)."
        ),
    )
    parser.add_argument(
        "ids", nargs="*", default=["all"],
        help="experiment ids (fig1..fig11, table1..table3, ablation_*) "
             "or 'all' / 'list'",
    )
    parser.add_argument("--scale", default="s1", choices=("s0", "s1", "s10"),
                        help="workload input scale (default s1)")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the cache pre-warm pass "
                             "(default 1 = fully serial)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="trace/result cache directory (default: "
                             "$REPRO_TRACE_CACHE or .trace_cache; "
                             "'' disables caching)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also dump all results as JSON")
    args = parser.parse_args(argv)

    if args.cache_dir is not None:
        # Call-time resolution means the whole run (and its spawned
        # workers, which inherit the environment) picks this up.
        os.environ["REPRO_TRACE_CACHE"] = args.cache_dir

    available = all_experiments()
    if args.ids == ["list"] or args.ids == []:
        for exp_id in DEFAULT_ORDER:
            print(exp_id)
        return 0
    ids = list(args.ids)
    if ids == ["all"]:
        ids = [e for e in DEFAULT_ORDER if e in available]

    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    cache.reset_stats()
    # Each CLI invocation should hit the on-disk cache afresh so the
    # run summary reflects this run, not a previous in-process one.
    from ..analysis.replay import clear_replay_memo
    clear_replay_memo()
    status = 0

    known_ids = [e for e in ids if e in available]
    prewarm = None
    if args.jobs > 1 and known_ids:
        jobs = collect_jobs(known_ids, scale=args.scale,
                            benchmarks=benchmarks)
        if jobs:
            print(f"pre-warming cache: {len(jobs)} jobs on "
                  f"{args.jobs} workers")
            prewarm = run_jobs(jobs, max_workers=args.jobs,
                               cache_dir=args.cache_dir,
                               progress=_progress)
            print(f"pre-warm: {prewarm.format_summary()}")
            print()
            for outcome in prewarm.errors:
                print(f"pre-warm error in {outcome['job'].describe()}: "
                      f"{outcome['error']}", file=sys.stderr)

    collected = []
    for exp_id in ids:
        try:
            fn = get_experiment(exp_id)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            status = 2
            continue
        started = time.time()
        result = fn(scale=args.scale, benchmarks=benchmarks)
        collected.append(result)
        print(result.render())
        print(f"({exp_id} completed in {time.time() - started:.1f}s)")
        print()
    if args.json:
        import json
        with open(args.json, "w") as fh:
            json.dump([r.to_dict() for r in collected], fh, indent=2)
        print(f"wrote {len(collected)} results to {args.json}")

    totals = cache.CacheStats()
    totals.merge(cache.STATS.snapshot())
    if prewarm is not None:
        totals.merge(prewarm.stats.snapshot())
    print(f"run summary: {totals.format_summary()}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
