"""Command-line entry point: ``python -m repro.experiments <ids...>``.

Regenerates any of the paper's tables/figures (or all of them) and
prints the rows the paper reports.
"""

from __future__ import annotations

import argparse
import sys
import time

from .base import all_experiments, get_experiment

#: Order used by ``all``: cheap scalar experiments first.
DEFAULT_ORDER = (
    "fig1", "table1", "fig2", "fig11",
    "table2", "table3", "fig3", "fig4", "fig5", "fig6",
    "fig7", "fig8", "fig9", "fig10",
    "locality", "scale_study",
    "ablation_strategy", "ablation_install", "ablation_locks",
    "ablation_inline", "ablation_indirect", "ablation_folding",
    "ablation_victim",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce tables/figures from 'Architectural Issues in "
            "Java Runtime Systems' (HPCA 2000)."
        ),
    )
    parser.add_argument(
        "ids", nargs="*", default=["all"],
        help="experiment ids (fig1..fig11, table1..table3, ablation_*) "
             "or 'all' / 'list'",
    )
    parser.add_argument("--scale", default="s1", choices=("s0", "s1", "s10"),
                        help="workload input scale (default s1)")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also dump all results as JSON")
    args = parser.parse_args(argv)

    available = all_experiments()
    if args.ids == ["list"] or args.ids == []:
        for exp_id in DEFAULT_ORDER:
            print(exp_id)
        return 0
    ids = list(args.ids)
    if ids == ["all"]:
        ids = [e for e in DEFAULT_ORDER if e in available]

    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    status = 0
    collected = []
    for exp_id in ids:
        try:
            fn = get_experiment(exp_id)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            status = 2
            continue
        started = time.time()
        result = fn(scale=args.scale, benchmarks=benchmarks)
        collected.append(result)
        print(result.render())
        print(f"({exp_id} completed in {time.time() - started:.1f}s)")
        print()
    if args.json:
        import json
        with open(args.json, "w") as fh:
            json.dump([r.to_dict() for r in collected], fh, indent=2)
        print(f"wrote {len(collected)} results to {args.json}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
