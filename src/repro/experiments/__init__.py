"""Experiments: one module per paper table/figure, plus ablations."""

from .base import ExperimentResult, all_experiments, get_experiment

__all__ = ["ExperimentResult", "all_experiments", "get_experiment"]
