"""Figure 6 — cache-miss behaviour over time (db).

Windowed miss counts along the run, interpreter vs JIT mode.  Expected
shapes: initial spikes from class loading in both modes; a steady low
plateau afterwards for the interpreter; clusters of translate-driven
spikes (methods compiled in rapid succession) in the JIT mode.
"""

from __future__ import annotations

import numpy as np

from ..analysis.parallel import trace_jobs
from ..analysis.replay import get_replay
from ..arch.caches import simulate_split_l1
from .base import ExperimentResult, experiment

#: References per time-series window.
WINDOW = 2048


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    return trace_jobs([(benchmarks or ["db"])[0]], scale)


@experiment("fig6", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    benchmark = (benchmarks or ["db"])[0]
    rows = []
    observed = []
    sparklines = []
    for mode in ("interp", "jit"):
        trace = get_replay(benchmark, scale, mode)
        res = simulate_split_l1(trace, window=WINDOW)
        series = res.dcache.window_misses + _pad(res.icache.window_misses,
                                                 len(res.dcache.window_misses))
        series = series.astype(float)
        n = len(series)
        if n == 0:
            continue
        head = series[: max(1, n // 8)]
        tail = series[max(1, n // 8):]
        median = float(np.median(tail)) if len(tail) else 0.0
        spike_threshold = max(3.0 * max(median, 1.0), 8.0)
        spikes = int((tail > spike_threshold).sum())
        burstiness = (float(series.std() / series.mean())
                      if series.mean() else 0.0)
        rows.append([
            benchmark, mode, n,
            round(float(head.mean()), 1),
            round(median, 1),
            spikes,
            round(burstiness, 2),
        ])
        observed.append(
            f"{mode}: {spikes} spike windows, burstiness {burstiness:.2f}"
        )
        sparklines.append(f"{mode:6s} |{_spark(series)}|")
    return ExperimentResult(
        "fig6",
        f"Miss-count time series for {benchmark} "
        f"(windows of {WINDOW} refs, I+D)",
        ["benchmark", "mode", "windows", "startup window mean",
         "steady-state median", "spike windows", "burstiness"],
        rows,
        paper_claim=(
            "Interpreter: initial class-loading spikes then consistent "
            "locality; JIT: many more spikes, clustered where groups of "
            "methods are translated in rapid succession."
        ),
        observed="; ".join(observed),
        extra="\n".join(sparklines),
    )


def _pad(arr: np.ndarray, n: int) -> np.ndarray:
    out = np.zeros(n, dtype=arr.dtype)
    out[: min(n, len(arr))] = arr[: min(n, len(arr))]
    return out


def _spark(series: np.ndarray, width: int = 72) -> str:
    """Compress the series into a fixed-width ASCII sparkline."""
    glyphs = " .:-=+*#%@"
    if len(series) > width:
        chunks = np.array_split(series, width)
        series = np.array([c.max() if len(c) else 0 for c in chunks])
    peak = series.max() or 1
    return "".join(
        glyphs[min(len(glyphs) - 1, int(v / peak * (len(glyphs) - 1)))]
        for v in series
    )
