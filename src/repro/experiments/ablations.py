"""Ablation studies for the design choices DESIGN.md calls out.

- ``ablation_strategy``: counter-threshold heuristics between the
  paper's two poles (first-invocation JIT vs oracle).
- ``ablation_install``: the Section 6 proposal — generate code straight
  into the I-cache, eliminating code-installation write misses; we bound
  the benefit by filtering install stores out of the D-stream.
- ``ablation_locks``: all three lock managers side by side.
- ``ablation_inline``: JIT inlining on/off (indirect-jump frequency and
  cycle effect).
"""

from __future__ import annotations

import numpy as np

from ..analysis.parallel import oracle_job, run_job, trace_job, trace_jobs
from ..analysis.runner import get_trace, oracle_run, run_vm
from ..arch.caches import simulate_split_l1
from ..native.layout import CODE_CACHE_BASE, CODE_CACHE_SIZE
from ..workloads.base import SPEC_BENCHMARKS
from .base import ExperimentResult, experiment

_STRATEGY_BENCHMARKS = ("db", "javac", "compress")
_THRESHOLDS = (2, 4, 16)


def _strategy_jobs(scale: str = "s1", benchmarks=None) -> list:
    jobs = []
    for name in benchmarks or _STRATEGY_BENCHMARKS:
        jobs.append(oracle_job(name, scale))
        jobs.extend(run_job(name, scale, ("counter", t))
                    for t in _THRESHOLDS)
    return jobs


@experiment("ablation_strategy", jobs=_strategy_jobs)
def run_strategy(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    """Counter thresholds vs first-use JIT vs oracle."""
    benchmarks = benchmarks or _STRATEGY_BENCHMARKS
    rows = []
    for name in benchmarks:
        analysis, mixed = oracle_run(name, scale)
        jit_total = analysis.jit_result.cycles
        row = [name, 1.0]
        for threshold in _THRESHOLDS:
            res = run_vm(name, scale=scale, mode=("counter", threshold))
            row.append(round(res.cycles / jit_total, 3))
        row.append(round(analysis.interp_result.cycles / jit_total, 3))
        row.append(round(mixed.cycles / jit_total, 3))
        rows.append(row)
    return ExperimentResult(
        "ablation_strategy",
        "Compilation strategies, cycles normalized to first-use JIT",
        ["benchmark", "jit(first use)", "counter>=2", "counter>=4",
         "counter>=16", "interp", "oracle"],
        rows,
        paper_claim=(
            "Simple counter heuristics sit between first-use JIT and the "
            "oracle; no realizable heuristic beats the oracle bound."
        ),
        observed="oracle column is the per-benchmark minimum in every row"
        if all(min(r[1:]) == r[-1] for r in rows) else
        "oracle not uniformly minimal (see rows)",
    )


def _install_jobs(scale: str = "s1", benchmarks=None) -> list:
    return [trace_job(n, scale, "jit") for n in benchmarks or SPEC_BENCHMARKS]


@experiment("ablation_install", jobs=_install_jobs)
def run_install(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    """Bound on the Section 6 generate-into-I-cache proposal."""
    benchmarks = benchmarks or SPEC_BENCHMARKS
    rows = []
    reductions = []
    for name in benchmarks:
        trace = get_trace(name, scale, "jit")
        base = simulate_split_l1(trace)
        # Filter code-cache install stores out of the data stream.
        mem = trace.is_memory
        ea = trace.ea[mem]
        wr = trace.is_write[mem]
        install = (
            wr & (ea >= CODE_CACHE_BASE)
            & (ea < CODE_CACHE_BASE + CODE_CACHE_SIZE)
        )
        keep = ~install
        from ..arch.caches import CacheConfig, CacheSim
        sim = CacheSim(CacheConfig(64 << 10, 32, 4))
        nodata = sim.run(ea[keep], writes=wr[keep])
        saved = base.dcache.total_misses - nodata.total_misses
        reduction = saved / max(1, base.dcache.total_misses)
        reductions.append(reduction)
        rows.append([
            name,
            base.dcache.total_misses,
            nodata.total_misses,
            int(install.sum()),
            round(100 * reduction, 1),
        ])
    return ExperimentResult(
        "ablation_install",
        "Generate-into-I-cache bound: D-misses without install stores",
        ["benchmark", "D misses (base)", "D misses (no install)",
         "install stores removed", "D-miss reduction %"],
        rows,
        paper_claim=(
            "Write misses from code installation are a significant part of "
            "JIT-mode data misses; writing generated code directly into "
            "the I-cache would remove them (Section 6 proposal)."
        ),
        observed=(
            f"D-miss reduction {100 * min(reductions):.0f}%.."
            f"{100 * max(reductions):.0f}%"
        ),
    )


_LOCK_BENCHMARKS = ("jack", "db", "jess", "mtrt")


def _lock_jobs(scale: str = "s1", benchmarks=None) -> list:
    return [run_job(n, scale, "jit", lock_manager=mgr, profile=False)
            for n in benchmarks or _LOCK_BENCHMARKS
            for mgr in ("monitor-cache", "thin-lock", "one-bit-lock")]


@experiment("ablation_locks", jobs=_lock_jobs)
def run_locks(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    """Monitor cache vs thin lock vs 1-bit lock, total sync cycles."""
    benchmarks = benchmarks or _LOCK_BENCHMARKS
    rows = []
    for name in benchmarks:
        cycles = {}
        for mgr in ("monitor-cache", "thin-lock", "one-bit-lock"):
            res = run_vm(name, scale=scale, mode="jit", lock_manager=mgr,
                         profile=False)
            cycles[mgr] = res.sync_cycles
        mc = cycles["monitor-cache"] or 1
        rows.append([
            name, cycles["monitor-cache"], cycles["thin-lock"],
            cycles["one-bit-lock"],
            round(mc / max(1, cycles["thin-lock"]), 2),
            round(mc / max(1, cycles["one-bit-lock"]), 2),
        ])
    return ExperimentResult(
        "ablation_locks",
        "Synchronization cycles by lock design (JIT mode)",
        ["benchmark", "monitor-cache", "thin-lock", "1-bit",
         "thin speedup", "1-bit speedup"],
        rows,
        paper_claim=(
            "Thin locks ~2x over the monitor cache; the 1-bit variant "
            "keeps most of the benefit while spending one header bit."
        ),
        observed="",
    )


def _elision_jobs(scale: str = "s1", benchmarks=None) -> list:
    jobs = []
    for name in benchmarks or SPEC_BENCHMARKS:
        jobs.append(run_job(name, scale, "jit", lock_manager="thin-lock",
                            profile=False))
        jobs.append(run_job(name, scale, "jit", lock_manager="thin-lock",
                            profile=False, jit_opt=True, lock_elision=True))
    return jobs


@experiment("ablation_lock_elision", jobs=_elision_jobs)
def run_lock_elision(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    """Escape-analysis lock elision + liveness DSE vs plain thin locks.

    The paper's Figure 11 shows locking is dominated by the uncontended
    cases (a) and (b), which thin locks *cheapen*; whole-program escape
    analysis goes further and *removes* acquisitions on provably
    thread-local receivers.  Rows report how many of each case were
    elided, the sync-cycle saving, and the JIT dead stores removed by
    the liveness pass (both optimizations are semantics-preserving: the
    harness asserts identical stdout).
    """
    benchmarks = benchmarks or SPEC_BENCHMARKS
    rows = []
    elided_total = base_total = 0
    for name in benchmarks:
        base = run_vm(name, scale=scale, mode="jit",
                      lock_manager="thin-lock", profile=False)
        opt = run_vm(name, scale=scale, mode="jit",
                     lock_manager="thin-lock", profile=False,
                     jit_opt=True, lock_elision=True)
        if base.stdout != opt.stdout:      # pragma: no cover - safety net
            raise AssertionError(f"{name}: optimized run diverged")
        if opt.sync["elision_violations"]:  # pragma: no cover - safety net
            raise AssertionError(f"{name}: elision violated thread-locality")
        acquires = base.sync["acquire_ops"]
        elided = opt.sync["elided_acquires"]
        cases = opt.sync["elided_case_counts"]
        saving = 1 - opt.sync_cycles / max(1, base.sync_cycles)
        elided_total += elided
        base_total += acquires
        rows.append([
            name, acquires, elided,
            round(100 * elided / max(1, acquires), 1),
            cases["a"], cases["b"], cases["c"],
            round(100 * saving, 1),
            opt.dead_stores_eliminated,
        ])
    return ExperimentResult(
        "ablation_lock_elision",
        "Escape-analysis lock elision over thin locks (JIT mode)",
        ["benchmark", "acquires (base)", "elided", "elided %",
         "case a", "case b", "case c", "sync cycle saving %",
         "JIT dead stores"],
        rows,
        paper_claim=(
            "Uncontended cases (a)/(b) dominate lock traffic (Figure 11); "
            "escape analysis can remove thread-local acquisitions "
            "outright instead of merely cheapening them."
        ),
        observed=(
            f"{elided_total} of {base_total} acquisitions elided across "
            f"{len(benchmarks)} benchmarks; elision is all-or-nothing per "
            "benchmark — field-insensitivity keeps container receivers "
            "escaped (see docs/analysis.md)"
        ),
    )


_INLINE_BENCHMARKS = ("db", "javac", "mpegaudio")


def _inline_jobs(scale: str = "s1", benchmarks=None) -> list:
    return [run_job(n, scale, "jit", inline=flag, profile=False)
            for n in benchmarks or _INLINE_BENCHMARKS
            for flag in (True, False)]


@experiment("ablation_inline", jobs=_inline_jobs)
def run_inline(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    """JIT inlining on/off."""
    benchmarks = benchmarks or _INLINE_BENCHMARKS
    rows = []
    for name in benchmarks:
        on = run_vm(name, scale=scale, mode="jit", inline=True, profile=False)
        off = run_vm(name, scale=scale, mode="jit", inline=False,
                     profile=False)
        ind_on = _indirect(on)
        ind_off = _indirect(off)
        rows.append([
            name, on.inlined_sites,
            round(off.cycles / max(1, on.cycles), 3),
            round(100 * ind_off, 2), round(100 * ind_on, 2),
        ])
    return ExperimentResult(
        "ablation_inline",
        "JIT devirtualization/inlining on vs off",
        ["benchmark", "inlined sites", "cycles off/on",
         "indirect % (off)", "indirect % (on)"],
        rows,
        paper_claim=(
            "JIT inlining of virtual calls lowers the frequency of "
            "indirect control transfers (Section 4.1)."
        ),
        observed="",
    )


_INDIRECT_BENCHMARKS = ("compress", "db", "jess")


def _indirect_jobs(scale: str = "s1", benchmarks=None) -> list:
    return trace_jobs(benchmarks or _INDIRECT_BENCHMARKS, scale)


@experiment("ablation_indirect", jobs=_indirect_jobs)
def run_indirect(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    """Section 6's recommendation: an indirect-branch predictor for the
    interpreter.  BTB vs two-level target cache on the dispatch jump."""
    from ..arch.branch import (
        HybridIndirectPredictor,
        TargetCache,
        extract_transfers,
        run_indirect_predictor,
    )

    class _BTBOnly:
        def __init__(self):
            self._targets = {}

        def predict(self, pc):
            return self._targets.get(pc)

        def update(self, pc, target):
            self._targets[pc] = target

    benchmarks = benchmarks or _INDIRECT_BENCHMARKS
    rows = []
    gains = []
    for name in benchmarks:
        for mode in ("interp", "jit"):
            trace = get_trace(name, scale, mode)
            events = extract_transfers(trace)
            accs = {}
            for pname, factory in (("btb", _BTBOnly),
                                    ("target-cache", TargetCache),
                                    ("hybrid", HybridIndirectPredictor)):
                res = run_indirect_predictor(factory(), *events)
                accs[pname] = res["accuracy"]
                n_events = res["events"]
            rows.append([
                name, mode, n_events,
                round(100 * accs["btb"], 1),
                round(100 * accs["target-cache"], 1),
                round(100 * accs["hybrid"], 1),
            ])
            if mode == "interp":
                gains.append(accs["target-cache"] - accs["btb"])
    return ExperimentResult(
        "ablation_indirect",
        "Indirect-target prediction accuracy (%): BTB vs target cache",
        ["benchmark", "mode", "indirect events", "btb", "target-cache",
         "hybrid"],
        rows,
        paper_claim=(
            "If the interpreter mode is used, a predictor well-tailored "
            "for indirect branches (two-level target caches, [22]/[26]) "
            "should be used; the plain BTB cannot capture the dispatch "
            "switch's many targets."
        ),
        observed=(
            f"interpreter-mode accuracy gain from the target cache: "
            f"{100 * min(gains):.0f}..{100 * max(gains):.0f} points"
        ),
    )


_FOLDING_BENCHMARKS = ("compress", "jess", "mpegaudio")


def _folding_jobs(scale: str = "s1", benchmarks=None) -> list:
    return trace_jobs(benchmarks or _FOLDING_BENCHMARKS, scale,
                      modes=("interp", "interp-fold"))


@experiment("ablation_folding", jobs=_folding_jobs)
def run_folding(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    """Section 4.4's proposal: a folding interpreter (picoJava-style
    grouping of simple bytecodes under one dispatch)."""
    from ..arch.branch import compare_predictors
    from ..arch.pipeline import ipc_by_width

    benchmarks = benchmarks or _FOLDING_BENCHMARKS
    rows = []
    savings = []
    for name in benchmarks:
        base_trace = get_trace(name, scale, "interp")
        fold_trace = get_trace(name, scale, "interp-fold")
        base_cycles = base_trace.base_cycles()
        fold_cycles = fold_trace.base_cycles()
        saving = 1 - fold_cycles / base_cycles
        savings.append(saving)
        g_base = compare_predictors(base_trace, names=("gshare",))["gshare"]
        g_fold = compare_predictors(fold_trace, names=("gshare",))["gshare"]
        ipc_base = ipc_by_width(base_trace, widths=(8,))[8].ipc
        ipc_fold = ipc_by_width(fold_trace, widths=(8,))[8].ipc
        rows.append([
            name,
            round(100 * saving, 1),
            round(100 * (1 - fold_trace.n / base_trace.n), 1),
            round(100 * g_base.misprediction_rate, 1),
            round(100 * g_fold.misprediction_rate, 1),
            round(ipc_base, 2),
            round(ipc_fold, 2),
        ])
    return ExperimentResult(
        "ablation_folding",
        "Folding interpreter vs plain switch dispatch (interpreter mode)",
        ["benchmark", "cycle saving %", "instr saving %",
         "gshare mispredict % (plain)", "gshare mispredict % (folded)",
         "ipc@8 (plain)", "ipc@8 (folded)"],
        rows,
        paper_claim=(
            "An interpreter that folds common bytecode sequences "
            "(picoJava-style) mitigates the dispatch switch's poor target "
            "prediction and scales better on wide machines (Section 4.4)."
        ),
        observed=(
            f"cycle savings {100 * min(savings):.0f}%.."
            f"{100 * max(savings):.0f}%; mispredict rate and 8-wide IPC "
            "improve in every row"
        ),
    )


_VICTIM_BENCHMARKS = ("javac", "db", "compress")


def _victim_jobs(scale: str = "s1", benchmarks=None) -> list:
    return trace_jobs(benchmarks or _VICTIM_BENCHMARKS, scale)


@experiment("ablation_victim", jobs=_victim_jobs)
def run_victim(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    """Figure 7 follow-on: the 1-way -> 2-way step dominates the
    associativity sweep; a small victim buffer (Jouppi) recovers most of
    that step on a direct-mapped cache."""
    from ..arch.caches import CacheConfig, CacheSim

    benchmarks = benchmarks or _VICTIM_BENCHMARKS
    rows = []
    recovered = []
    for name in benchmarks:
        for mode in ("interp", "jit"):
            trace = get_trace(name, scale, mode)
            pcs = trace.pc
            dm = CacheSim(CacheConfig(8 << 10, 32, 1)).run(pcs)
            dmv = CacheSim(CacheConfig(8 << 10, 32, 1,
                                       victim_entries=8)).run(pcs)
            two = CacheSim(CacheConfig(8 << 10, 32, 2)).run(pcs)
            gap = dm.miss_rate - two.miss_rate
            got = dm.miss_rate - dmv.effective_miss_rate
            frac = got / gap if gap > 1e-9 else 1.0
            recovered.append(min(1.5, max(0.0, frac)))
            rows.append([
                name, mode,
                round(100 * dm.miss_rate, 3),
                round(100 * dmv.effective_miss_rate, 3),
                round(100 * two.miss_rate, 3),
                round(100 * min(1.5, max(0.0, frac)), 0),
            ])
    return ExperimentResult(
        "ablation_victim",
        "I-cache: direct-mapped + 8-entry victim buffer vs 2-way (8K)",
        ["benchmark", "mode", "DM miss %", "DM+victim miss %",
         "2-way miss %", "assoc gap recovered %"],
        rows,
        paper_claim=(
            "(Extension of Fig. 7's finding) the largest associativity "
            "benefit is 1->2 way, i.e. pair conflicts — which a small "
            "victim buffer can capture without the extra way."
        ),
        observed=(
            f"victim buffer recovers {100 * min(recovered):.0f}%.."
            f"{100 * max(recovered):.0f}% of the 1->2-way gap"
        ),
    )


def _indirect(result) -> float:
    from ..analysis.mix import indirect_fraction
    return indirect_fraction(result.category_counts)
