"""Bytecode/method locality statistics (the [27] figures the paper cites).

Section 4.3 grounds the interpreter's cache behaviour in dynamic
bytecode concentration (15 unique bytecodes cover 60-85 % of the
stream; <=20 % of distinct bytecodes cover 90 %) and in tiny-method
dominance (45 % of invoked methods are <=16 bytecode bytes).  This
experiment recomputes those statistics for our workloads.
"""

from __future__ import annotations

from ..analysis.locality import (
    BytecodeLocality,
    MethodLocality,
    method_sizes_of,
)
from ..analysis.parallel import run_job
from ..analysis.runner import run_vm
from ..isa.opcodes import N_OPCODES
from ..workloads.base import SPEC_BENCHMARKS, get_workload
from .base import ExperimentResult, experiment


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    return [run_job(n, scale, "interp")
            for n in benchmarks or SPEC_BENCHMARKS]


@experiment("locality", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    benchmarks = benchmarks or SPEC_BENCHMARKS
    rows = []
    top15 = []
    small = []
    for name in benchmarks:
        program = get_workload(name).build(scale)
        result = run_vm(name, scale=scale, mode="interp")
        bl = BytecodeLocality(result.opcode_counts)
        ml = MethodLocality(result.profiles, method_sizes_of(program))
        b = bl.summary()
        m = ml.summary()
        rows.append([
            name,
            b["distinct_opcodes"],
            round(100 * b["top15_coverage"], 1),
            b["opcodes_for_90pct"],
            round(100 * b["opcodes_for_90pct"] / N_OPCODES, 1),
            round(m["mean_method_bytes"], 1),
            round(100 * m["small_method_invocation_fraction"], 1),
        ])
        top15.append(b["top15_coverage"])
        small.append(m["small_method_invocation_fraction"])
    return ExperimentResult(
        "locality",
        "Dynamic bytecode & method locality (interpreter runs)",
        ["benchmark", "distinct opcodes", "top-15 coverage %",
         "opcodes for 90%", "as % of ISA", "mean method bytes",
         "invocations of <=16B methods %"],
        rows,
        paper_claim=(
            "[27]: 15 unique bytecodes cover 60-85% of the dynamic "
            "stream; <20% of distinct bytecodes cover 90%; ~45% of "
            "dynamically invoked methods are tiny (<=16 bytecode bytes)."
        ),
        observed=(
            f"top-15 coverage {100 * min(top15):.0f}%..{100 * max(top15):.0f}%; "
            f"tiny-method invocation share "
            f"{100 * min(small):.0f}%..{100 * max(small):.0f}%"
        ),
    )
