"""Figure 10 — normalized execution time vs issue width.

Cycle counts from the pipeline model, normalized per benchmark+mode to
the 1-wide machine.  Despite the interpreter's higher IPC, the JIT's
much smaller instruction count keeps its absolute time far lower — the
paper's companion point to Figure 9.
"""

from __future__ import annotations

from ..analysis.parallel import trace_jobs
from ..analysis.replay import get_replay
from ..arch.pipeline import ipc_by_width
from ..workloads.base import SPEC_BENCHMARKS
from .base import ExperimentResult, experiment

WIDTHS = (1, 2, 4, 8)


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    return trace_jobs(benchmarks or SPEC_BENCHMARKS, scale)


@experiment("fig10", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    benchmarks = benchmarks or SPEC_BENCHMARKS
    rows = []
    jit_faster = 0
    for name in benchmarks:
        cycles = {}
        for mode in ("interp", "jit"):
            trace = get_replay(name, scale, mode)
            results = ipc_by_width(trace, widths=WIDTHS)
            cycles[mode] = [results[w].cycles for w in WIDTHS]
            base = cycles[mode][0]
            rows.append(
                [name, mode]
                + [round(c / base, 3) for c in cycles[mode]]
                + [cycles[mode][WIDTHS.index(4)]]
            )
        if cycles["jit"][2] < cycles["interp"][2]:
            jit_faster += 1
    return ExperimentResult(
        "fig10",
        "Execution time normalized to the 1-wide machine",
        ["benchmark", "mode", "w=1", "w=2", "w=4", "w=8",
         "abs cycles @4-wide"],
        rows,
        paper_claim=(
            "Execution time improves with width for both modes; the JIT "
            "remains far faster in absolute time at every width."
        ),
        observed=(
            f"JIT absolute time lower at 4-wide for {jit_faster}/"
            f"{len(benchmarks)} benchmarks"
        ),
    )
