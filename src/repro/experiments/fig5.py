"""Figure 5 — cache behaviour inside the translate portion of the JIT.

Attribution of misses to the translate routine vs the rest of the JIT
run: translate contributes ~30 % of instruction misses (better locality
*inside* translate thanks to generator-routine reuse), 40-80 % of data
misses for many benchmarks, and ~60 % of translate-portion misses are
writes (code generation/installation).
"""

from __future__ import annotations

from ..analysis.parallel import trace_jobs
from ..analysis.replay import get_replay
from ..arch.caches import simulate_split_l1
from ..workloads.base import SPEC_BENCHMARKS
from .base import ExperimentResult, experiment


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    return trace_jobs(benchmarks or SPEC_BENCHMARKS, scale, modes=("jit",))


@experiment("fig5", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    benchmarks = benchmarks or SPEC_BENCHMARKS
    rows = []
    d_shares = []
    w_shares = []
    for name in benchmarks:
        trace = get_replay(name, scale, "jit")
        res = simulate_split_l1(trace, attribute_translate=True)
        ic, dc = res.icache, res.dcache
        i_share = ic.misses[1] / max(1, ic.total_misses)
        d_share = dc.misses[1] / max(1, dc.total_misses)
        w_in_translate = dc.write_misses[1] / max(1, dc.misses[1])
        i_rate_in = ic.group_miss_rate(1)
        i_rate_out = ic.group_miss_rate(0)
        rows.append([
            name,
            round(100 * i_share, 1),
            round(100 * d_share, 1),
            round(100 * w_in_translate, 1),
            round(100 * i_rate_in, 3),
            round(100 * i_rate_out, 3),
        ])
        d_shares.append(d_share)
        w_shares.append(w_in_translate)
    return ExperimentResult(
        "fig5",
        "Misses attributed to the translate portion (JIT mode)",
        ["benchmark", "I-miss share %", "D-miss share %",
         "writes among translate D-misses %",
         "I miss % inside translate", "I miss % outside"],
        rows,
        paper_claim=(
            "Translate contributes ~30% of I-misses and 40-80% of D-misses "
            "for many benchmarks; ~60% of translate misses are writes from "
            "code generation/installation; I-locality inside translate is "
            "at least as good as outside (generator reuse)."
        ),
        observed=(
            f"translate D-miss share {100 * min(d_shares):.0f}%.."
            f"{100 * max(d_shares):.0f}%; writes within translate "
            f"{100 * min(w_shares):.0f}%..{100 * max(w_shares):.0f}%"
        ),
    )
