"""Cross-process shared JIT code archive: warm-start vs cold-start.

The paper charges every dynamic compile its full translate cost —
Figure 1's "translate" bars assume each JVM instance pays to compile
every hot method from scratch.  A persistent content-addressed archive
of compiled methods (in the spirit of ShareJIT) converts the second and
later runs' translate cost into a much cheaper *install* cost: copy the
already-translated native code into the code cache and relink.  This
experiment measures that conversion on the seven SPEC-style workloads:

- ``warm_cold_comparison``: per workload, an archive-disabled baseline,
  a cold-archive run (populates the archive, pays full translate) and a
  warm run (hits the archive, pays install).  Execution must be
  byte-identical across all three — the archive may only move cycles
  between the translate and install buckets, never change what runs.
- ``tiered_warm_start``: the online tier ladder with a warm archive —
  promotions price against the install cost, so hot methods reach
  native code earlier and the whole run gets cheaper, not just the
  translate bar.
- ``pooled_sharing``: two pool workers populate one archive
  concurrently (first pass), then a second pass is served entirely
  from it — the cross-*process* sharing the archive exists for.
- ``chaos_quarantine``: flip bytes in one archive entry and rerun warm;
  the corrupt entry must be quarantined and recompiled, never executed.

``python -m repro.experiments.codecache --out BENCH_codecache.json``
writes the machine-checkable summary CI guards (warm beats cold by at
least half, hit rate > 0, byte-identical output, quarantine fired).

Nothing here *asserts* those invariants — under an active
``REPRO_FAULTS`` plan (the chaos CI job) injected corruption
legitimately degrades hit rates mid-run.  The bench file records what
happened; the CI guard asserts it on the clean run only.
"""

from __future__ import annotations

import glob
import os
import tempfile

from ..analysis import cache
from ..analysis.parallel import run_job, run_jobs
from ..analysis.runner import run_vm
from ..workloads.base import SPEC_BENCHMARKS
from .base import ExperimentResult, experiment


def _run(name: str, scale: str, mode, archive: str):
    """Archive-enabled runs bypass the run-result cache automatically
    (the warm/cold split must be measured fresh); the archive-disabled
    baselines are deterministic and cacheable like any other run."""
    return run_vm(name, scale=scale, mode=mode, code_archive=archive)


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    # Only the archive-disabled baselines are pre-warmable; the
    # cold/warm archive runs must execute fresh to be meaningful.
    return [run_job(n, scale, "jit")
            for n in (benchmarks or SPEC_BENCHMARKS)]


def _same_execution(a, b) -> bool:
    """True when two runs did identical work outside the translate /
    install split: same output, same heap shape, same classes, same
    executed cycles.  (Total ``cycles`` may differ — that is the
    translate saving being measured.)"""
    return (a.stdout == b.stdout
            and a.heap == b.heap
            and a.classes_loaded == b.classes_loaded
            and a.execute_cycles == b.execute_cycles)


def warm_cold_comparison(scale: str = "s1", benchmarks=None,
                         archive_dir: str | None = None,
                         mode: str = "jit") -> dict:
    """Disabled / cold / warm triple per workload, plus suite totals."""
    benchmarks = tuple(benchmarks or SPEC_BENCHMARKS)
    archive_dir = archive_dir or tempfile.mkdtemp(prefix="repro-codecache-")
    per = {}
    cold_total = warm_total = 0
    hits = misses = 0
    for name in benchmarks:
        # One archive per workload: library methods compiled for an
        # earlier workload can legitimately serve a later one (same
        # bytecode, same baked addresses), which would make its "cold"
        # run partially warm and muddy the per-workload comparison.
        wdir = os.path.join(archive_dir, name)
        base = _run(name, scale, mode, "")    # archive disabled
        cold = _run(name, scale, mode, wdir)  # populates
        warm = _run(name, scale, mode, wdir)  # installs
        arch = warm.archive or {}
        row = {
            "base_cycles": base.cycles,
            "cold_cycles": cold.cycles,
            "warm_cycles": warm.cycles,
            "cold_translate": cold.translate_cycles,
            "warm_translate": warm.translate_cycles,
            "warm_install": warm.install_cycles,
            "methods_compiled_cold": cold.methods_compiled,
            "methods_installed_warm": warm.methods_installed,
            "archive_hits": arch.get("hits", 0),
            "archive_misses": arch.get("misses", 0),
            # The archive may only move cycles between buckets:
            "identical": (_same_execution(base, cold)
                          and _same_execution(base, warm)),
            "disabled_equals_cold": base.cycles == cold.cycles,
        }
        per[name] = row
        cold_total += row["cold_translate"]
        warm_total += row["warm_translate"]
        hits += row["archive_hits"]
        misses += row["archive_misses"]
    return {
        "scale": scale,
        "mode": mode,
        "benchmarks": list(benchmarks),
        "archive_dir": archive_dir,
        "per_workload": per,
        "totals": {
            "cold_translate": cold_total,
            "warm_translate": warm_total,
            "reduction_fraction": round(1 - warm_total / cold_total, 4)
            if cold_total else None,
            "hit_rate": round(hits / (hits + misses), 4)
            if hits + misses else 0.0,
            "all_identical": all(r["identical"] for r in per.values()),
        },
    }


def tiered_warm_start(scale: str = "s0", benchmark: str = "jess") -> dict:
    """The tier ladder against a warm archive: promotions price against
    the install cost, so the warm run promotes earlier and finishes in
    fewer *total* cycles — a whole-run win, not just a translate-bar
    one.  Only stdout equivalence holds (the warm run intentionally
    spends more of its life in native code)."""
    d = tempfile.mkdtemp(prefix="repro-codecache-tiered-")
    cold = _run(benchmark, scale, "tiered", d)
    warm = _run(benchmark, scale, "tiered", d)
    return {
        "benchmark": benchmark,
        "scale": scale,
        "cold_cycles": cold.cycles,
        "warm_cycles": warm.cycles,
        "cold_translate": cold.translate_cycles,
        "warm_translate": warm.translate_cycles,
        "archive_installs": warm.tiering["archive_installs"],
        "stdout_ok": warm.stdout == cold.stdout,
        "warm_beats_cold": warm.cycles < cold.cycles,
    }


def pooled_sharing(scale: str = "s0", benchmarks=("db", "compress"),
                   mode: str = "jit") -> dict:
    """Two workers, one archive.  The first pass populates it from both
    processes at once (pid-file locks arbitrate); the second pass is
    served entirely from the shared store."""
    d = tempfile.mkdtemp(prefix="repro-codecache-pool-")
    jobs = [run_job(n, scale, mode, code_archive=d) for n in benchmarks]

    def counters(summary):
        snap = summary.stats.snapshot()
        return {k: snap.get(k, 0)
                for k in ("code_hits", "code_misses", "code_stores")}

    first = run_jobs(jobs, max_workers=2, cache_dir="")
    second = run_jobs(jobs, max_workers=2, cache_dir="")
    return {
        "benchmarks": list(benchmarks),
        "scale": scale,
        "first_pass": counters(first),
        "second_pass": counters(second),
        "errors": len(first.errors) + len(second.errors),
    }


def chaos_quarantine(scale: str = "s0", benchmark: str = "db",
                     mode: str = "jit") -> dict:
    """Flip bytes in one archive entry, rerun warm: the sidecar digest
    must catch it, the entry must be quarantined and recompiled, and
    the corrupted code must never execute."""
    d = tempfile.mkdtemp(prefix="repro-codecache-chaos-")
    base = _run(benchmark, scale, mode, "")
    _run(benchmark, scale, mode, d)                 # populate
    entries = sorted(glob.glob(os.path.join(d, "code", "*.pkl")))
    with open(entries[0], "r+b") as fh:
        fh.write(b"\xde\xad\xbe\xef")
    before = cache.STATS.snapshot()
    warm = _run(benchmark, scale, mode, d)
    delta = cache.CacheStats.diff(cache.STATS.snapshot(), before)
    return {
        "benchmark": benchmark,
        "scale": scale,
        "entries": len(entries),
        "quarantined": delta.get("quarantined", 0),
        "recompiled_stores": delta.get("code_stores", 0),
        "identical": _same_execution(base, warm),
        "quarantine_dir_exists": os.path.isdir(
            os.path.join(d, "quarantine")),
    }


@experiment("codecache", jobs=_jobs)
def run_codecache(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    """Warm vs cold shared-archive translate cost."""
    data = warm_cold_comparison(scale, benchmarks)
    rows = []
    for name, r in data["per_workload"].items():
        saved = r["cold_translate"] - r["warm_translate"]
        rows.append([
            name,
            r["cold_translate"],
            r["warm_translate"],
            round(saved / r["cold_translate"], 3)
            if r["cold_translate"] else None,
            r["archive_hits"],
            r["methods_installed_warm"],
            "yes" if r["identical"] else "NO",
        ])
    tot = data["totals"]
    return ExperimentResult(
        "codecache",
        "Shared JIT code archive: warm vs cold translate cycles",
        ["benchmark", "cold translate", "warm translate", "saved",
         "hits", "installs", "identical"],
        rows,
        paper_claim=(
            "Translate overhead (Fig. 1) is charged per JVM instance; "
            "sharing compiled code across instances converts it into a "
            "far cheaper install cost without changing execution."
        ),
        observed=(
            f"warm start cuts suite translate cycles by "
            f"{100 * (tot['reduction_fraction'] or 0):.1f}% "
            f"(hit rate {100 * tot['hit_rate']:.1f}%), output "
            f"{'identical' if tot['all_identical'] else 'DIVERGED'}"
        ),
        extra=(f"suite translate: cold={tot['cold_translate']} "
               f"warm={tot['warm_translate']}"),
    )


# ----------------------------------------------------------------------
# BENCH_codecache.json
# ----------------------------------------------------------------------
def write_bench(path: str, scale: str = "s1", benchmarks=None) -> dict:
    """Emit the machine-checkable summary CI guards against."""
    import json

    data = warm_cold_comparison(scale, benchmarks)
    data["tiered"] = tiered_warm_start()
    data["pooled"] = pooled_sharing()
    data["chaos"] = chaos_quarantine()
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
    return data


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="shared code-archive benchmark summary")
    parser.add_argument("--out", default="BENCH_codecache.json")
    parser.add_argument("--scale", default="s1")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated workload subset")
    args = parser.parse_args(argv)
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    data = write_bench(args.out, scale=args.scale, benchmarks=benchmarks)
    # Manifest rides along: fault plan + ledger (quarantines show up
    # here under chaos plans) and the cache counter snapshot.
    from .. import obs
    tot = data["totals"]
    manifest = obs.build_manifest(
        "repro.experiments.codecache",
        argv=argv if argv is not None else None,
        extra={"scale": args.scale, "benchmarks": data["benchmarks"],
               "totals": tot},
    )
    obs.write_manifest(obs.manifest_path_for(args.out), manifest)
    print(f"suite translate: cold={tot['cold_translate']} "
          f"warm={tot['warm_translate']} "
          f"({100 * (tot['reduction_fraction'] or 0):.1f}% saved, "
          f"hit rate {100 * tot['hit_rate']:.1f}%)")
    t = data["tiered"]
    print(f"tiered warm start: {t['cold_cycles']} -> {t['warm_cycles']} "
          f"cycles ({t['archive_installs']} archive installs)")
    p = data["pooled"]
    print(f"pooled: first pass {p['first_pass']}, "
          f"second pass {p['second_pass']}")
    c = data["chaos"]
    print(f"chaos: quarantined={c['quarantined']} "
          f"recompiled={c['recompiled_stores']} identical={c['identical']}")
    print(f"wrote {args.out} (+ {obs.manifest_path_for(args.out)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
