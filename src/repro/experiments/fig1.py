"""Figure 1 — when or whether to translate.

For each benchmark: the always-JIT run split into translate and execute
components (normalized to the JIT total), the oracle ("opt")
configuration, and the interpreter-to-JIT time ratio printed on top of
the paper's bars.
"""

from __future__ import annotations

from ..analysis.hybrid import OracleAnalysis
from ..analysis.parallel import oracle_job
from ..analysis.report import format_stacked_bars
from ..analysis.runner import oracle_run
from ..workloads.base import FIG1_BENCHMARKS
from .base import ExperimentResult, experiment


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    return [oracle_job(n, scale) for n in benchmarks or FIG1_BENCHMARKS]


@experiment("fig1", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    benchmarks = benchmarks or FIG1_BENCHMARKS
    rows = []
    bars = []
    for name in benchmarks:
        analysis, mixed = oracle_run(name, scale)
        jit = analysis.jit_result
        total = jit.cycles or 1
        translate = jit.translate_cycles / total
        execute = 1.0 - translate
        opt_norm = mixed.cycles / total
        saving = 1.0 - opt_norm
        rows.append([
            name,
            round(translate, 3),
            round(execute, 3),
            round(analysis.interp_to_jit_ratio, 2),
            round(opt_norm, 3),
            round(100 * saving, 1),
            round(100 * analysis.oracle_saving, 1),
            f"{len(analysis.methods_to_compile)}/{len(analysis.decisions)}",
        ])
        bars.append((
            f"{name} (x{analysis.interp_to_jit_ratio:.1f})",
            [("translate", translate), ("execute", execute)],
        ))
    chart = format_stacked_bars(
        bars, title="JIT time, normalized (ratio on label = interp/JIT)"
    )
    return ExperimentResult(
        "fig1",
        "Translate vs execute breakdown, opt oracle, interp/JIT ratio",
        ["benchmark", "translate", "execute", "interp/jit",
         "opt(norm)", "opt saving %", "opt saving % (model)",
         "compiled/methods"],
        rows,
        paper_claim=(
            "JIT strongly outperforms interpretation; translate dominates "
            "for hello/db/javac; the opt oracle saves at most ~10-15% "
            "(translation-heavy apps) and almost nothing for compress/jack."
        ),
        observed=_shape(rows),
        extra=chart,
    )


def _shape(rows) -> str:
    by = {r[0]: r for r in rows}
    heavy = [n for n in ("hello", "db", "javac") if n in by]
    light = [n for n in ("compress", "jack") if n in by]
    parts = []
    if heavy:
        savings = ", ".join(f"{n}={by[n][5]:.0f}%" for n in heavy)
        parts.append(f"translate-heavy savings: {savings}")
    if light:
        savings = ", ".join(f"{n}={by[n][5]:.1f}%" for n in light)
        parts.append(f"execution-heavy savings: {savings}")
    return "; ".join(parts)
