"""Figure 3 — percentage of data-cache misses that are writes.

Direct-mapped 64 KB cache with 32-byte lines (the paper's Figure 3
configuration).  In JIT mode, code generation/installation makes write
misses 50-90 % of all data misses.
"""

from __future__ import annotations

from ..analysis.report import format_bars
from ..analysis.parallel import trace_jobs
from ..analysis.replay import get_replay
from ..arch.caches import simulate_split_l1
from ..workloads.base import SPEC_BENCHMARKS
from .base import ExperimentResult, experiment


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    return trace_jobs(benchmarks or SPEC_BENCHMARKS, scale)


@experiment("fig3", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    benchmarks = benchmarks or SPEC_BENCHMARKS
    rows = []
    bars = []
    jit_fracs = []
    for name in benchmarks:
        row = [name]
        for mode in ("interp", "jit"):
            trace = get_replay(name, scale, mode)
            res = simulate_split_l1(trace, dcache={"assoc": 1})
            frac = res.dcache.write_miss_fraction
            row.append(round(100 * frac, 1))
            if mode == "jit":
                jit_fracs.append(frac)
                bars.append((name, 100 * frac))
        rows.append(row)
    return ExperimentResult(
        "fig3",
        "% of data misses that are writes (direct-mapped, 32B lines)",
        ["benchmark", "interp %", "jit %"],
        rows,
        paper_claim=(
            "In JIT mode, 50-90% of data misses at 64K are write misses "
            "(dominated by code installation into the code cache)."
        ),
        observed=(
            f"JIT write-miss fraction {100 * min(jit_fracs):.0f}%.."
            f"{100 * max(jit_fracs):.0f}%"
        ),
        extra=format_bars(bars, title="JIT-mode write-miss share (%)",
                          unit="%"),
    )
