"""Table 1 — memory footprint of the interpreter vs the JIT.

The paper reports the JIT configuration needing 10-33 % more memory,
most pronounced for applications with small dynamic memory use (db).

Our miniature inputs shrink the *heaps* far more than the *code*, which
exaggerates the relative code-cache overhead at s1; the ordering
reproduces at every scale, and the magnitudes move toward the paper's
band as inputs grow, so the table also reports the s10 overhead when
invoked at s1 or larger.
"""

from __future__ import annotations

from ..analysis.parallel import run_job
from ..analysis.runner import run_vm
from ..workloads.base import SPEC_BENCHMARKS
from .base import ExperimentResult, experiment


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    scales = (scale,) if scale == "s0" else (scale, "s10")
    return [run_job(n, sc, mode, profile=False)
            for n in benchmarks or SPEC_BENCHMARKS
            for sc in scales
            for mode in ("interp", "jit")]


def _overhead(name: str, scale: str) -> tuple[float, float, dict]:
    interp = run_vm(name, scale=scale, mode="interp", profile=False)
    jit = run_vm(name, scale=scale, mode="jit", profile=False)
    interp_kb = interp.footprint["interpreter_total"] / 1024
    jit_kb = jit.footprint["jit_total"] / 1024
    return interp_kb, jit_kb, jit.footprint


@experiment("table1", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    benchmarks = benchmarks or SPEC_BENCHMARKS
    include_s10 = scale != "s0"
    rows = []
    overheads = []
    s10_overheads = []
    for name in benchmarks:
        interp_kb, jit_kb, fp = _overhead(name, scale)
        overhead = 100 * (jit_kb / interp_kb - 1)
        overheads.append(overhead)
        row = [
            name,
            round(interp_kb, 1),
            round(jit_kb, 1),
            round(overhead, 1),
            round(fp["code_cache"] / 1024, 1),
            round(fp["heap_peak"] / 1024, 1),
        ]
        if include_s10:
            i10, j10, _fp10 = _overhead(name, "s10")
            s10 = 100 * (j10 / i10 - 1)
            s10_overheads.append(s10)
            row.append(round(s10, 1))
        rows.append(row)
    headers = ["benchmark", "interp KB", "jit KB", "jit overhead %",
               "code cache KB", "heap peak KB"]
    if include_s10:
        headers.append("overhead % @s10")
    worst = rows[overheads.index(max(overheads))][0]
    observed = (
        f"overhead range {min(overheads):.0f}%..{max(overheads):.0f}%; "
        f"worst: {worst}"
    )
    if s10_overheads:
        observed += (
            f"; at s10 the range tightens to {min(s10_overheads):.0f}%.."
            f"{max(s10_overheads):.0f}% (inputs amortize the code cache)"
        )
    return ExperimentResult(
        "table1",
        "Memory footprint: interpreter vs JIT (KB)",
        headers,
        rows,
        paper_claim=(
            "JIT memory is 10-33% higher than the interpreter's, most "
            "pronounced for small-heap applications such as db."
        ),
        observed=observed,
    )
