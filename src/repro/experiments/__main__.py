"""``python -m repro.experiments`` dispatches to the CLI."""

from .cli import main

raise SystemExit(main())
