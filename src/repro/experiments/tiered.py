"""Tiered adaptive execution: the online strategy vs the paper's bounds.

Two experiments plus a benchmark emitter:

- ``tiered``: the seven SPEC-style workloads under interp, first-use
  JIT, the online :class:`~repro.vm.strategy.TieredStrategy`, and the
  oracle, reporting how much of the oracle's cycle advantage over the
  JIT the online ladder recovers — the realizable fraction of the
  paper's Section 3 bound.
- ``ablation_tiered``: the hotness-threshold sweep.  ``compile_ratio``
  prices tier-1 promotion against the translate-cost model; sweeping it
  moves the ladder between "compile everything immediately" (the JIT
  pole) and "never compile" (the interp pole).

``python -m repro.experiments.tiered --out BENCH_tiered.json`` runs
both plus the deoptimization scenarios below and writes a
machine-checkable summary (CI asserts the recovered fraction and that
every tier transition — promotion, OSR entry, deopt — actually fired).

The deopt scenarios are crafted programs for the speculation-failure
paths no workload triggers organically:

- ``lock_escape``: a hot loop allocates a lock-heavy object at a site
  escape analysis cannot prove (it is published to a static field), so
  tier 2 elides its lock *speculatively*; a second thread then locks
  the published object, forcing the exact-repair path and a
  deoptimization of the running loop frame.
- ``class_load``: a hot call site is devirtualized under a
  loaded-world CHA assumption; lazily loading a subclass that
  overrides the target invalidates the assumption and deoptimizes
  before the first dispatch on the new class.
"""

from __future__ import annotations

from ..analysis.parallel import oracle_job, run_job
from ..analysis.runner import oracle_run, run_vm
from ..isa import ProgramBuilder
from ..vm import JavaVM, TieredStrategy
from ..workloads.base import SPEC_BENCHMARKS
from .base import ExperimentResult, experiment

#: compile_ratio values for the hotness-threshold sweep.
SWEEP_RATIOS = (0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0)

#: Thresholds for the deopt scenarios: promote fast, screen off, so the
#: speculative paths are reached within a few dozen iterations.
AGGRESSIVE = dict(t1_invocations=2, t2_invocations=3, osr_backedges=4,
                  t2_backedges=8, compile_ratio=0.01, t2_screen=False)


# ----------------------------------------------------------------------
# deoptimization scenarios
# ----------------------------------------------------------------------
def lock_escape_program() -> ProgramBuilder:
    """Speculative lock elision that fails: spinner thread S allocates
    a Box per iteration, publishes it to a static field (escapes ->
    unprovable), and locks it via a synchronized method; toucher thread
    T locks whatever is published.  Main blocks in join while S and T
    interleave (the scheduler switches on bytecode quanta, so the
    interleaving — and with it every observable — is identical under
    every execution config).  stdout is the constant loop count."""
    pb = ProgramBuilder("deopt-lock", main_class="Main")

    box = pb.cls("Box")
    box.method("<init>").return_()
    box.method("poke", synchronized=True).return_()

    main_cls = pb.cls("Main")
    main_cls.static_field("g", "ref")

    s = pb.cls("S", super_name="java/lang/Thread")
    run = s.method("run")
    loop = run.new_label()
    done = run.new_label()
    run.iconst(0).istore(1)
    run.bind(loop)
    run.iload(1).iconst(200).if_icmpge(done)
    run.new("Box").dup()
    run.invokespecial("Box", "<init>", 0)
    run.astore(2)
    run.aload(2).putstatic("Main", "g")
    run.aload(2).invokevirtual("Box", "poke", 0, False)
    run.iinc(1, 1)
    run.goto(loop)
    run.bind(done)
    run.return_()

    t = pb.cls("T", super_name="java/lang/Thread")
    run = t.method("run")
    loop = run.new_label()
    done = run.new_label()
    skip = run.new_label()
    run.iconst(0).istore(1)
    run.bind(loop)
    run.iload(1).iconst(300).if_icmpge(done)
    run.getstatic("Main", "g").astore(2)
    run.aload(2).ifnull(skip)
    run.aload(2).invokevirtual("Box", "poke", 0, False)
    run.bind(skip)
    run.iinc(1, 1)
    run.goto(loop)
    run.bind(done)
    run.return_()

    m = main_cls.method("main", static=True)
    m.new("S").dup().invokespecial("S", "<init>", 0).astore(1)
    m.new("T").dup().invokespecial("T", "<init>", 0).astore(2)
    m.aload(1).invokevirtual("java/lang/Thread", "start", 0, False)
    m.aload(2).invokevirtual("java/lang/Thread", "start", 0, False)
    m.aload(1).invokevirtual("java/lang/Thread", "join", 0, False)
    m.aload(2).invokevirtual("java/lang/Thread", "join", 0, False)
    m.getstatic("java/lang/System", "out").iconst(200)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()
    return pb


def class_load_program() -> ProgramBuilder:
    """Loaded-world CHA speculation that fails: while only Base is
    loaded, the hot ``Main.call`` devirtualizes ``Base.val``; lazily
    loading Derived (which overrides it) must deoptimize ``call``
    before the first dispatch on a Derived instance.  stdout is the
    arithmetic witness: 100 * 1 + 2."""
    pb = ProgramBuilder("deopt-cha", main_class="Main")

    base = pb.cls("Base")
    base.method("<init>").return_()
    base.method("val", returns=True).iconst(1).ireturn()

    derived = pb.cls("Derived", super_name="Base")
    derived.method("<init>").return_()
    derived.method("val", returns=True).iconst(2).ireturn()

    main_cls = pb.cls("Main")
    call = main_cls.method("call", argc=1, returns=True, static=True)
    call.aload(0).invokevirtual("Base", "val", 0, True).ireturn()

    m = main_cls.method("main", static=True)
    m.new("Base").dup().invokespecial("Base", "<init>", 0).astore(0)
    m.iconst(0).istore(1)          # sum
    m.iconst(0).istore(2)          # i
    loop = m.new_label()
    done = m.new_label()
    m.bind(loop)
    m.iload(2).iconst(100).if_icmpge(done)
    m.aload(0).invokestatic("Main", "call", 1, True)
    m.iload(1).iadd().istore(1)
    m.iinc(2, 1)
    m.goto(loop)
    m.bind(done)
    m.new("Derived").dup().invokespecial("Derived", "<init>", 0).astore(3)
    m.aload(3).invokestatic("Main", "call", 1, True)
    m.iload(1).iadd().istore(1)
    m.getstatic("java/lang/System", "out").iload(1)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()
    return pb


SCENARIOS = {
    "lock_escape": (lock_escape_program, ["200"]),
    "class_load": (class_load_program, ["102"]),
}


def run_scenario(name: str, strategy=None, static_concurrency=False):
    """Run one deopt scenario under the tiered engine; returns VMResult."""
    builder, _expected = SCENARIOS[name]
    vm = JavaVM(builder().build(),
                strategy=strategy or TieredStrategy(**AGGRESSIVE),
                spawn_daemons=False,
                static_concurrency=static_concurrency)
    return vm.run()


def run_scenarios() -> dict:
    """All deopt scenarios; per-scenario counters plus stdout check."""
    out = {}
    for name, (builder, expected) in SCENARIOS.items():
        res = run_scenario(name)
        t = res.tiering
        out[name] = {
            "stdout_ok": res.stdout == expected,
            "promotions_t1": t["promotions_t1"],
            "promotions_t2": t["promotions_t2"],
            "osr_entries": t["osr_entries"],
            "deopts": t["deopts"],
            "deopt_reasons": t["deopt_reasons"],
            "speculation_failures": t["speculation_failures"],
        }
    return out


def static_concurrency_comparison() -> dict:
    """The lock_escape scenario with and without the static race
    detector's summaries feeding the tier-2 screen.

    Without summaries the engine speculates on the escaping Box site
    and pays a lock-escape deoptimization when the toucher thread locks
    the published object.  With ``static_concurrency=True`` the lockset
    analysis pre-blacklists the site (the Box class is locked by two
    threads), so the engine never speculates: zero lock-escape deopts,
    zero elision violations, identical stdout.  CI guards all three."""
    out = {}
    for label, static in (("static_off", False), ("static_on", True)):
        res = run_scenario("lock_escape", static_concurrency=static)
        t = res.tiering
        out[label] = {
            "stdout_ok": res.stdout == SCENARIOS["lock_escape"][1],
            "deopts": t["deopts"],
            "lock_escape_deopts":
                t["deopt_reasons"].get("lock_escape", 0),
            "speculative_marks": t["speculative_marks"],
            "elision_violations":
                res.sync.get("elision_violations", 0),
        }
    off, on = out["static_off"], out["static_on"]
    out["deopts_avoided"] = (off["lock_escape_deopts"]
                             - on["lock_escape_deopts"])
    return out


# ----------------------------------------------------------------------
# experiments
# ----------------------------------------------------------------------
def _tiered_jobs(scale: str = "s1", benchmarks=None) -> list:
    jobs = []
    for name in benchmarks or SPEC_BENCHMARKS:
        jobs.append(oracle_job(name, scale))
        jobs.append(run_job(name, scale, "tiered"))
    return jobs


def _suite(scale, benchmarks, mode):
    """(total cycles, per-workload VMResult map) for one mode."""
    results = {n: run_vm(n, scale=scale, mode=mode) for n in benchmarks}
    return sum(r.cycles for r in results.values()), results


def gap_recovered(scale: str = "s1", benchmarks=None) -> dict:
    """Suite totals for jit/tiered/oracle/interp plus the fraction of
    the oracle's advantage over first-use JIT the online ladder
    recovers.  The building block for the experiment and the CI guard."""
    benchmarks = tuple(benchmarks or SPEC_BENCHMARKS)
    per = {}
    interp_total = jit_total = oracle_total = tiered_total = 0
    counters = {"promotions_t1": 0, "promotions_t2": 0, "osr_entries": 0,
                "deopts": 0, "speculative_marks": 0}
    for name in benchmarks:
        analysis, mixed = oracle_run(name, scale)
        tiered = run_vm(name, scale=scale, mode="tiered")
        row = {
            "interp": analysis.interp_result.cycles,
            "jit": analysis.jit_result.cycles,
            "tiered": tiered.cycles,
            "oracle": mixed.cycles,
            "tiering": {k: tiered.tiering[k] for k in counters},
        }
        per[name] = row
        interp_total += row["interp"]
        jit_total += row["jit"]
        oracle_total += row["oracle"]
        tiered_total += row["tiered"]
        for k in counters:
            counters[k] += tiered.tiering[k]
    gap = jit_total - oracle_total
    return {
        "scale": scale,
        "benchmarks": list(benchmarks),
        "strategy": TieredStrategy().describe(),
        "per_workload": per,
        "totals": {
            "interp": interp_total,
            "jit": jit_total,
            "tiered": tiered_total,
            "oracle": oracle_total,
        },
        "oracle_gap_cycles": gap,
        "recovered_cycles": jit_total - tiered_total,
        "recovered_fraction": round((jit_total - tiered_total) / gap, 4)
        if gap else None,
        "tiering": counters,
    }


@experiment("tiered", jobs=_tiered_jobs)
def run_tiered(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    """Online tiering vs the paper's strategy poles."""
    data = gap_recovered(scale, benchmarks)
    rows = []
    for name, row in data["per_workload"].items():
        jit = row["jit"]
        t = row["tiering"]
        rows.append([
            name,
            jit,
            round(row["interp"] / jit, 3),
            round(row["tiered"] / jit, 3),
            round(row["oracle"] / jit, 3),
            t["promotions_t1"],
            t["promotions_t2"],
            t["osr_entries"],
            t["deopts"],
        ])
    tot = data["totals"]
    frac = data["recovered_fraction"]
    extra = (
        f"suite cycles: jit={tot['jit']} tiered={tot['tiered']} "
        f"oracle={tot['oracle']}\n"
        f"oracle advantage over jit: {data['oracle_gap_cycles']} cycles; "
        f"online ladder recovers {data['recovered_cycles']} "
        f"({100 * frac:.1f}%)" if frac is not None else ""
    )
    between = tot["oracle"] < tot["tiered"] < tot["jit"]
    return ExperimentResult(
        "tiered",
        "Online tiered execution vs first-use JIT and the oracle",
        ["benchmark", "jit cycles", "interp/jit", "tiered/jit",
         "oracle/jit", "t1", "t2", "osr", "deopt"],
        rows,
        paper_claim=(
            "An online hotness ladder with OSR sits strictly between "
            "first-use JIT and the oracle, recovering most of the "
            "oracle's advantage without oracle knowledge."
        ),
        observed=(
            f"tiered {'strictly between' if between else 'NOT between'} "
            f"oracle and jit; recovered "
            f"{100 * (frac or 0):.1f}% of the gap"
        ),
        extra=extra,
    )


def _ablation_jobs(scale: str = "s1", benchmarks=None) -> list:
    jobs = []
    for name in benchmarks or SPEC_BENCHMARKS:
        jobs.append(oracle_job(name, scale))
        for ratio in SWEEP_RATIOS:
            jobs.append(run_job(name, scale,
                                ("tiered", 2, 64, 4, ratio)))
    return jobs


@experiment("ablation_tiered", jobs=_ablation_jobs)
def run_ablation(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    """Hotness-threshold sweep: compile_ratio from eager to reluctant."""
    benchmarks = tuple(benchmarks or SPEC_BENCHMARKS)
    jit_total = oracle_total = 0
    for name in benchmarks:
        analysis, mixed = oracle_run(name, scale)
        jit_total += analysis.jit_result.cycles
        oracle_total += mixed.cycles
    gap = jit_total - oracle_total
    rows = []
    best = None
    for ratio in SWEEP_RATIOS:
        total = 0
        t1 = osr = 0
        for name in benchmarks:
            res = run_vm(name, scale=scale,
                         mode=("tiered", 2, 64, 4, ratio))
            total += res.cycles
            t1 += res.tiering["promotions_t1"]
            osr += res.tiering["osr_entries"]
        frac = (jit_total - total) / gap if gap else 0.0
        rows.append([ratio, total, round(total / jit_total, 4),
                     round(frac, 3), t1, osr])
        if best is None or total < best[1]:
            best = (ratio, total)
    return ExperimentResult(
        "ablation_tiered",
        "Hotness-threshold sweep (tier-1 pricing ratio)",
        ["compile_ratio", "suite cycles", "vs jit", "gap recovered",
         "t1 promotions", "OSR entries"],
        rows,
        paper_claim=(
            "Promotion priced against translate cost beats any fixed "
            "counter: too-eager thresholds pay JIT-like translate "
            "overhead, too-reluctant ones leave loop cycles "
            "interpreted."
        ),
        observed=(
            f"best ratio {best[0]:g}: {best[1]} cycles "
            f"(jit {jit_total}, oracle {oracle_total})"
        ),
        extra=f"anchors: jit={jit_total} oracle={oracle_total} gap={gap}",
    )


# ----------------------------------------------------------------------
# BENCH_tiered.json
# ----------------------------------------------------------------------
def sample_wall_times(workload: str = "db", scale: str = "s0",
                      repeats: int = 6) -> dict:
    """Wall-clock sample stream of fresh tiered VM runs, steady-judged.

    Every sample is a full cache-bypassed run (``cache_dir=""``), so the
    stream measures what a user-facing invocation pays; the verdict
    comes from :func:`repro.bench.stats.steady_report` and feeds the
    ``--strict-steady`` gate.
    """
    import time as _time

    from ..bench.stats import steady_report

    samples = []
    for _ in range(repeats):
        started = _time.perf_counter()
        run_vm(workload, scale=scale, mode="tiered", cache_dir="")
        samples.append(_time.perf_counter() - started)
    return {"workload": workload, "scale": scale, "repeats": repeats,
            **steady_report(samples)}


def write_bench(path: str, scale: str = "s1", benchmarks=None) -> dict:
    """Emit the machine-checkable summary CI guards against."""
    import json

    data = gap_recovered(scale, benchmarks)
    sweep = []
    for ratio in SWEEP_RATIOS:
        total = sum(
            run_vm(n, scale=scale, mode=("tiered", 2, 64, 4, ratio)).cycles
            for n in data["benchmarks"])
        sweep.append({"compile_ratio": ratio, "suite_cycles": total})
    data["sweep"] = sweep
    data["deopt_scenarios"] = run_scenarios()
    data["static_concurrency"] = static_concurrency_comparison()
    data["wall_sampling"] = sample_wall_times()
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
    return data


def main(argv=None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="tiered-execution benchmark summary")
    parser.add_argument("--out", default="BENCH_tiered.json")
    parser.add_argument("--scale", default="s1")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated workload subset")
    parser.add_argument("--strict-steady", action="store_true",
                        help="exit nonzero when the wall-clock sample "
                             "stream never reaches detected steady state")
    args = parser.parse_args(argv)
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    data = write_bench(args.out, scale=args.scale, benchmarks=benchmarks)
    # A manifest rides along with the bench file so two bench runs can
    # be compared like any other traced run: it pins the strategy name,
    # its thresholds, and the suite's tier-transition counters.
    from .. import obs
    manifest = obs.build_manifest(
        "repro.experiments.tiered",
        argv=argv if argv is not None else None,
        extra={"scale": args.scale, "benchmarks": data["benchmarks"],
               "strategy": data["strategy"], "tiering": data["tiering"],
               "recovered_fraction": data["recovered_fraction"],
               "wall_sampling": {
                   "steady": data["wall_sampling"]["steady"],
                   "cv": data["wall_sampling"]["cv"]}},
    )
    obs.write_manifest(obs.manifest_path_for(args.out), manifest)
    tot = data["totals"]
    frac = data["recovered_fraction"]
    print(f"suite: jit={tot['jit']} tiered={tot['tiered']} "
          f"oracle={tot['oracle']}")
    if frac is not None:
        print(f"recovered {100 * frac:.1f}% of the oracle gap")
    for name, s in data["deopt_scenarios"].items():
        print(f"scenario {name}: deopts={s['deopts']} "
              f"osr={s['osr_entries']} stdout_ok={s['stdout_ok']}")
    sc = data["static_concurrency"]
    print(f"static concurrency: lock-escape deopts "
          f"{sc['static_off']['lock_escape_deopts']} -> "
          f"{sc['static_on']['lock_escape_deopts']} "
          f"({sc['deopts_avoided']} avoided)")
    ws = data["wall_sampling"]
    print(f"wall sampling ({ws['workload']}/{ws['scale']}, "
          f"{ws['repeats']} fresh runs): steady={ws['steady']} "
          f"cv={ws['cv']}")
    print(f"wrote {args.out} (+ {obs.manifest_path_for(args.out)})")
    if args.strict_steady and not ws["steady"]:
        print("STRICT-STEADY FAILURE: tiered wall-clock samples never "
              "stabilized", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
