"""Server traffic: the execution-strategy ladder under sustained load.

The paper's measurements are batch runs; server workloads stress the
same architectural tradeoffs differently — translate cost lands on the
*tail latency* of early requests, monitor traffic is continuous rather
than phased, and a shared code archive converts cold-start translate
time into install time.  This experiment drives one declarative traffic
scenario (:mod:`repro.traffic`) through four configurations:

- ``jit`` — compile on first use: every endpoint pays full translate
  cost on its first request,
- ``tiered`` — the online hotness ladder: cold endpoints stay
  interpreted, hot ones climb,
- ``tiered_cold`` — tiered against an empty shared code archive
  (populating it), and
- ``tiered_warm`` — tiered against the archive the cold run populated:
  the second server process of Section 6's multi-VM argument.

``python -m repro.experiments.server --out BENCH_server.json`` writes
the machine-checkable record: per-config throughput, tail-latency
percentiles in exact cycles, lock-case mix, tier-transition and archive
counters, per-window samples with a steady-state verdict
(:mod:`repro.bench.stats`) — plus the guard verdicts CI enforces:

- every config reaches detected steady state,
- the tiered ladder beats first-use JIT on total cycles under traffic,
- the warm archive beats the cold archive on cold-start tail latency
  and serves every compile from the archive (zero misses),
- all configs print the same checksum (they executed the same work),
- the scenario actually exercised the monitor ladder (contended
  acquires and elisions both observed).

``--check FILE`` re-evaluates the guards of an existing record (used by
CI against both the freshly generated file and the committed one).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

from .. import obs
from ..traffic import get_preset, run_scenario
from ..traffic.spec import ScenarioSpec
from .base import ExperimentResult

#: Config name -> (mode, archive role); order is the report order.
CONFIGS = ("jit", "tiered", "tiered_cold", "tiered_warm")

#: Steady-state detection defaults for traffic windows.  Cycle-domain
#: samples are deterministic, so the threshold is tighter than the
#: wall-clock default in repro.bench.stats.
STEADY_WINDOW = 5
STEADY_CV = 0.10


def run_server(spec: ScenarioSpec, *, windows: int = 50,
               steady_window: int = STEADY_WINDOW,
               steady_cv: float = STEADY_CV,
               archive_dir: str | None = None) -> dict:
    """Run the four-config ladder over ``spec``; JSON-ready record."""
    kw = dict(windows=windows, steady_window=steady_window,
              steady_cv=steady_cv)
    configs = {}
    configs["jit"] = run_scenario(spec, "jit", **kw).to_dict()
    configs["tiered"] = run_scenario(spec, "tiered", **kw).to_dict()
    if archive_dir is not None:
        configs["tiered_cold"] = run_scenario(
            spec, "tiered", code_archive=archive_dir, **kw).to_dict()
        configs["tiered_warm"] = run_scenario(
            spec, "tiered", code_archive=archive_dir, **kw).to_dict()
    else:
        with tempfile.TemporaryDirectory(prefix="repro-archive-") as d:
            configs["tiered_cold"] = run_scenario(
                spec, "tiered", code_archive=d, **kw).to_dict()
            configs["tiered_warm"] = run_scenario(
                spec, "tiered", code_archive=d, **kw).to_dict()
    data = {
        "spec": spec.to_dict(),
        "steady_params": {"window": steady_window, "cv": steady_cv,
                          "windows": windows},
        "configs": configs,
    }
    data["guards"] = evaluate_guards(data)
    return data


def evaluate_guards(data: dict) -> dict:
    """Named guard verdicts over a server record (True = pass)."""
    cfg = data["configs"]
    jit, tiered = cfg["jit"], cfg["tiered"]
    cold, warm = cfg["tiered_cold"], cfg["tiered_warm"]
    checksums = {tuple(c["stdout"]) for c in cfg.values()}
    sync = tiered["lock_mix"]
    guards = {
        "all_steady": all(c["steady"]["steady"] for c in cfg.values()),
        "tiered_beats_jit": tiered["cycles"] < jit["cycles"],
        "warm_improves_cold_start_tail":
            warm["cold_start"]["p99"] < cold["cold_start"]["p99"],
        "warm_archive_all_hits":
            warm["archive"]["misses"] == 0 and warm["archive"]["hits"] > 0,
        "cold_archive_populated": cold["archive"]["stores"] > 0,
        "checksums_agree": len(checksums) == 1,
        "monitor_ladder_exercised":
            sync["case_counts"]["d"] > 0 and sync["elided_acquires"] > 0,
        "requests_completed":
            all(c["requests"] == data["spec"]["requests"]
                for c in cfg.values()),
    }
    return guards


def guard_failures(data: dict) -> list[str]:
    """Human-readable failure lines (empty = all guards green)."""
    cfg = data["configs"]
    failures = []
    for name, ok in data.get("guards", evaluate_guards(data)).items():
        if ok:
            continue
        detail = ""
        if name == "all_steady":
            non = [k for k, c in cfg.items() if not c["steady"]["steady"]]
            detail = f" (non-steady: {non})"
        elif name == "tiered_beats_jit":
            detail = (f" (tiered {cfg['tiered']['cycles']} >= "
                      f"jit {cfg['jit']['cycles']})")
        elif name == "warm_improves_cold_start_tail":
            detail = (f" (warm p99 {cfg['tiered_warm']['cold_start']['p99']}"
                      f" >= cold p99 "
                      f"{cfg['tiered_cold']['cold_start']['p99']})")
        failures.append(f"guard {name} FAILED{detail}")
    return failures


# ----------------------------------------------------------------------
# human-readable ladder table
# ----------------------------------------------------------------------
# Not in the experiment registry: traffic scenarios run outside the
# workload result cache, so there are no pre-warmable jobs to declare
# (the registry invariant every registered experiment satisfies).
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    """The traffic ladder at report scale (scaled-down CI variant)."""
    requests = {"s0": 10_000, "s1": 30_000, "s2": 120_000}.get(scale, 30_000)
    spec = get_preset("api").replace(requests=requests)
    data = run_server(spec)
    rows = []
    for name in CONFIGS:
        c = data["configs"][name]
        lat = c["latency_cycles"]["service"]
        rows.append([
            name, c["cycles"], c["translate_cycles"],
            c["throughput_rpmc"], lat["p50"], lat["p99"],
            c["cold_start"]["p99"],
            "yes" if c["steady"]["steady"] else "NO",
        ])
    guards = data["guards"]
    ok = all(guards.values())
    return ExperimentResult(
        "server",
        f"Execution ladder under server traffic ({spec.name}, "
        f"{requests} requests)",
        ["config", "cycles", "translate", "req/Mcy", "p50", "p99",
         "cold p99", "steady"],
        rows,
        paper_claim=(
            "Under sustained request traffic, lazy tiering beats "
            "compile-on-first-use (translate cost lands on request "
            "tails), and a shared code archive moves the cold-start "
            "tail of a second VM instance onto the cheap install path."
        ),
        observed=("all guards pass" if ok else
                  "; ".join(guard_failures(data))),
        extra=f"guards: {json.dumps(guards)}",
    )


# ----------------------------------------------------------------------
# BENCH_server.json
# ----------------------------------------------------------------------
def write_bench(path: str, spec: ScenarioSpec, *, windows: int = 50,
                steady_window: int = STEADY_WINDOW,
                steady_cv: float = STEADY_CV) -> dict:
    data = run_server(spec, windows=windows, steady_window=steady_window,
                      steady_cv=steady_cv)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return data


def _print_summary(data: dict) -> None:
    for name in CONFIGS:
        c = data["configs"][name]
        lat = c["latency_cycles"]["service"]
        print(f"{name:>12}: cycles={c['cycles']} "
              f"translate={c['translate_cycles']} "
              f"p50={lat['p50']} p99={lat['p99']} "
              f"cold_p99={c['cold_start']['p99']} "
              f"steady={c['steady']['steady']} "
              f"warmup={c['steady']['warmup_discarded']}")
    for line in guard_failures(data):
        print(line, file=sys.stderr)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="server-traffic benchmark summary (BENCH_server.json)")
    parser.add_argument("--out", default="BENCH_server.json")
    parser.add_argument("--scenario", default="api")
    parser.add_argument("--requests", type=int, default=None,
                        help="override the preset's request count")
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--windows", type=int, default=50)
    parser.add_argument("--steady-window", type=int, default=STEADY_WINDOW)
    parser.add_argument("--steady-cv", type=float, default=STEADY_CV)
    parser.add_argument("--check", metavar="FILE",
                        help="re-evaluate guards of an existing record "
                             "and exit (no runs)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="record span/counter events and write them "
                             "as JSONL (also enabled by $REPRO_OBS)")
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check) as fh:
            data = json.load(fh)
        data["guards"] = evaluate_guards(data)
        _print_summary(data)
        failures = guard_failures(data)
        print(f"{args.check}: "
              + ("all guards pass" if not failures
                 else f"{len(failures)} guard(s) failed"))
        return 1 if failures else 0

    trace_path = args.trace or os.environ.get("REPRO_OBS") or None
    if trace_path:
        obs.TRACER.enable()
        obs.TRACER.reset()

    spec = get_preset(args.scenario)
    overrides = {}
    if args.requests is not None:
        overrides["requests"] = args.requests
    if args.threads is not None:
        overrides["threads"] = args.threads
    if overrides:
        spec = spec.replace(**overrides)

    data = write_bench(args.out, spec, windows=args.windows,
                       steady_window=args.steady_window,
                       steady_cv=args.steady_cv)
    manifest = obs.build_manifest(
        "repro.experiments.server",
        argv=argv if argv is not None else None,
        extra={"spec": data["spec"], "guards": data["guards"],
               "steady_params": data["steady_params"]},
    )
    obs.write_manifest(obs.manifest_path_for(args.out), manifest)
    _print_summary(data)
    failures = guard_failures(data)
    print(f"wrote {args.out} (+ {obs.manifest_path_for(args.out)})")
    if trace_path:
        n_events = obs.write_events(trace_path)
        print(f"wrote {n_events} events to {trace_path}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
