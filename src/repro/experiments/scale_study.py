"""Input-scale sensitivity (the paper's Section 2 argument for s1).

"when using [the] s100 input set ... the programs run for so long that
almost any amount of compilation effort will be amortized. ... The
increased method reuse resulted in expected results such as increased
code locality, reduced time spent in compilation vs execution ... but
all major conclusions from the experiments stay valid."

We sweep our three scales and check exactly those trends: the translate
share shrinks, the interp/JIT ratio grows, and the oracle's achievable
saving shrinks as inputs grow.
"""

from __future__ import annotations

from ..analysis.parallel import oracle_job
from ..analysis.runner import oracle_analysis, run_vm
from ..workloads.base import SCALES
from .base import ExperimentResult, experiment

_SCALE_BENCHMARKS = ("db", "javac", "compress")


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    # The sweep itself is the experiment, so `scale` is ignored here too.
    return [oracle_job(n, sc)
            for n in benchmarks or _SCALE_BENCHMARKS
            for sc in SCALES]


@experiment("scale_study", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    # `scale` is ignored: the sweep itself is the experiment.
    benchmarks = benchmarks or _SCALE_BENCHMARKS
    rows = []
    monotone = 0
    checks = 0
    for name in benchmarks:
        shares = []
        for sc in SCALES:
            analysis = oracle_analysis(name, sc)
            jit = analysis.jit_result
            share = jit.translate_cycles / jit.cycles
            shares.append(share)
            rows.append([
                name, sc,
                jit.bytecodes_executed,
                round(100 * share, 1),
                round(analysis.interp_to_jit_ratio, 2),
                round(100 * analysis.oracle_saving, 1),
            ])
        checks += 1
        if shares[0] >= shares[1] >= shares[2]:
            monotone += 1
    return ExperimentResult(
        "scale_study",
        "Effect of input scale (s0/s1/s10) on the Section 3 quantities",
        ["benchmark", "scale", "bytecodes", "translate share %",
         "interp/jit", "oracle saving %"],
        rows,
        paper_claim=(
            "Larger inputs amortize compilation: translate share and the "
            "oracle's achievable saving shrink with input size, while the "
            "JIT's advantage over interpretation grows; conclusions hold "
            "at every scale."
        ),
        observed=(
            f"translate share decreases monotonically with scale for "
            f"{monotone}/{checks} benchmarks"
        ),
    )
