"""Figure 4 — average miss rates vs traditional C / C++ programs.

Suite-average I/D miss rates for the two Java modes next to the
statistical C and C++ reference traces.  The paper's reading: the
interpreter beats everything on locality; JIT-mode instruction behaviour
is close to C/C++; JIT-mode *data* behaviour is the worst of all; and
behaviour depends on the execution mode far more than on Java's
object-oriented nature.
"""

from __future__ import annotations

from ..analysis.parallel import trace_jobs
from ..analysis.replay import get_replay
from ..arch.caches import simulate_split_l1
from ..workloads.base import SPEC_BENCHMARKS
from ..workloads.native_reference import PROFILES, generate_reference_trace
from .base import ExperimentResult, experiment


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    return trace_jobs(benchmarks or SPEC_BENCHMARKS, scale)


@experiment("fig4", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    benchmarks = benchmarks or SPEC_BENCHMARKS
    rows = []
    rates = {}
    for mode in ("interp", "jit"):
        i_rates, d_rates = [], []
        for name in benchmarks:
            trace = get_replay(name, scale, mode)
            res = simulate_split_l1(trace)
            i_rates.append(res.icache.miss_rate)
            d_rates.append(res.dcache.miss_rate)
        i_avg = sum(i_rates) / len(i_rates)
        d_avg = sum(d_rates) / len(d_rates)
        rates[f"java/{mode}"] = (i_avg, d_avg)
        rows.append([f"java/{mode}", round(100 * i_avg, 3),
                     round(100 * d_avg, 3)])
    for pname, profile in PROFILES.items():
        trace = generate_reference_trace(profile, n=400_000)
        res = simulate_split_l1(trace)
        rates[pname] = (res.icache.miss_rate, res.dcache.miss_rate)
        rows.append([pname, round(100 * res.icache.miss_rate, 3),
                     round(100 * res.dcache.miss_rate, 3)])
    ordering_i = rates["java/interp"][0] < min(rates["C"][0], rates["C++"][0])
    ordering_d = rates["java/jit"][1] >= max(
        rates["java/interp"][1], 0
    )
    return ExperimentResult(
        "fig4",
        "Average L1 miss rates vs C/C++ (%), 64K caches",
        ["workload", "I miss %", "D miss %"],
        rows,
        paper_claim=(
            "Interpreter mode beats C, C++ and JIT mode on both caches; "
            "JIT-mode I-cache behaviour is closest to C/C++; JIT-mode "
            "D-cache miss rate is the highest of all workloads."
        ),
        observed=(
            f"interp best I-cache: {ordering_i}; "
            f"jit worst-or-equal D-cache among Java modes: {ordering_d}"
        ),
    )
