"""Figure 2 — native instruction mix, cumulative over the suite.

Interpreter vs JIT vs traditional C/C++ reference traces: memory
operations 25-40 % (about 5 % more frequent when interpreting), control
transfers 15-20 %, and the interpreter's characteristic indirect-jump
share from switch dispatch.
"""

from __future__ import annotations

import numpy as np

from ..analysis.mix import indirect_fraction, mix_from_counts, summarize
from ..analysis.parallel import run_job
from ..analysis.runner import run_vm
from ..native.nisa import N_CATEGORIES
from ..workloads.base import SPEC_BENCHMARKS
from ..workloads.native_reference import PROFILES, generate_reference_trace
from .base import ExperimentResult, experiment


def _jobs(scale: str = "s1", benchmarks=None) -> list:
    return [run_job(n, scale, mode, profile=False)
            for mode in ("interp", "jit")
            for n in benchmarks or SPEC_BENCHMARKS]


@experiment("fig2", jobs=_jobs)
def run(scale: str = "s1", benchmarks=None) -> ExperimentResult:
    benchmarks = benchmarks or SPEC_BENCHMARKS
    rows = []
    observed_bits = []
    mem_by_mode = {}
    for mode in ("interp", "jit"):
        counts = np.zeros(N_CATEGORIES, dtype=np.int64)
        for name in benchmarks:
            result = run_vm(name, scale=scale, mode=mode, profile=False)
            counts += result.category_counts
        rows.append(_row(f"java/{mode}", counts))
        mem_by_mode[mode] = rows[-1][1]
    for pname, profile in PROFILES.items():
        trace = generate_reference_trace(profile, n=300_000)
        rows.append(_row(pname, trace.category_counts()))
    observed_bits.append(
        f"memory ops: interp {mem_by_mode['interp']:.1f}% vs "
        f"jit {mem_by_mode['jit']:.1f}%"
    )
    return ExperimentResult(
        "fig2",
        "Instruction mix, cumulative over the suite (%)",
        ["workload", "memory", "load", "store", "transfer", "branch",
         "call", "ijump", "indirect", "compute"],
        rows,
        paper_claim=(
            "15-20% transfers and 25-40% memory ops in both Java modes, "
            "similar to C/C++; memory ops ~5% more frequent when "
            "interpreting; interpreter has far more indirect jumps, JIT "
            "more branches/calls (inlining removes indirect jumps)."
        ),
        observed="; ".join(observed_bits),
    )


def _row(label: str, counts: np.ndarray) -> list:
    mix = mix_from_counts(counts)
    s = summarize(mix)
    return [
        label,
        round(100 * s["memory"], 1),
        round(100 * mix["load"], 1),
        round(100 * mix["store"], 1),
        round(100 * s["transfer"], 1),
        round(100 * mix["branch"], 1),
        round(100 * mix["call"], 1),
        round(100 * mix["ijump"], 2),
        round(100 * indirect_fraction(counts), 2),
        round(100 * s["compute"], 1),
    ]
