"""repro: reproduction of 'Architectural Issues in Java Runtime Systems'
(HPCA 2000) — a simulated JVM with interpreter and JIT execution modes,
trace-driven cache / branch-prediction / ILP studies, and synchronization
designs, evaluated on SpecJVM98-like synthetic workloads.

Quick start::

    from repro.analysis import run_vm
    result = run_vm("compress", scale="s1", mode="jit")
    print(result.cycles, result.stdout)

Reproduce a paper figure::

    from repro.experiments import get_experiment
    print(get_experiment("fig1")(scale="s1").render())
"""

__version__ = "1.0.0"
