"""Split-L1 cache harness over native traces.

Extracts the instruction-fetch and data-reference streams from a
:class:`~repro.native.trace.Trace` and drives a pair of caches with
them, with the paper's default geometries (Table 3: 64 KB / 32 B lines,
2-way I, 4-way D) as defaults.
"""

from __future__ import annotations

import numpy as np

from ...native.trace import Trace
from .cache import CacheConfig, CacheSim, CacheStats

#: The paper's Table 3 geometries.
DEFAULT_ICACHE = dict(size=64 << 10, block=32, assoc=2)
DEFAULT_DCACHE = dict(size=64 << 10, block=32, assoc=4)


class SplitL1Result:
    """I- and D-cache statistics for one trace."""

    def __init__(self, icache: CacheStats, dcache: CacheStats) -> None:
        self.icache = icache
        self.dcache = dcache

    def __repr__(self) -> str:
        return f"SplitL1Result(I={self.icache!r}, D={self.dcache!r})"


def data_stream(trace: Trace):
    """(addrs, writes, translate_mask) of the data references."""
    mem = trace.is_memory
    return trace.ea[mem], trace.is_write[mem], trace.in_translate[mem]


def instruction_stream(trace: Trace):
    """(pcs, translate_mask) of the instruction fetches."""
    return trace.pc, trace.in_translate


def simulate_split_l1(
    trace: Trace,
    icache: dict | None = None,
    dcache: dict | None = None,
    attribute_translate: bool = False,
    window: int = 0,
) -> SplitL1Result:
    """Run a trace through a split L1.

    ``trace`` may be a :class:`Trace` or an
    ``analysis.replay.TraceReplay`` (whose cached streams are shared by
    every geometry swept over the same trace).
    ``attribute_translate=True`` produces two statistic groups per cache:
    group 0 = outside translate, group 1 = inside translate (Figure 5).
    ``window`` produces the Figure 6 time series.
    """
    icfg = CacheConfig(**{**DEFAULT_ICACHE, **(icache or {})})
    dcfg = CacheConfig(**{**DEFAULT_DCACHE, **(dcache or {})})

    if hasattr(trace, "instruction_stream"):  # TraceReplay
        pcs, i_translate = trace.instruction_stream()
        addrs, writes, d_translate = trace.data_stream()
    else:
        pcs, i_translate = instruction_stream(trace)
        addrs, writes, d_translate = data_stream(trace)
    isim = CacheSim(icfg)
    istats = isim.run(
        pcs,
        groups=i_translate.astype(np.int64) if attribute_translate else None,
        n_groups=2 if attribute_translate else 1,
        window=window,
    )

    dsim = CacheSim(dcfg)
    dstats = dsim.run(
        addrs,
        writes=writes,
        groups=d_translate.astype(np.int64) if attribute_translate else None,
        n_groups=2 if attribute_translate else 1,
        window=window,
    )
    return SplitL1Result(istats, dstats)
