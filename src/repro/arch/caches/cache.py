"""Set-associative cache simulation (the cachesim5 stand-in).

Trace-driven, write-allocate, LRU replacement.  Supports:

- miss classification (compulsory vs. other, write misses),
- per-group attribution (e.g. translate vs. rest of JIT — Figure 5),
- windowed time series of miss counts (Figure 6).

Two kernels implement the same semantics bit-for-bit: the original
event-at-a-time ``scalar`` loop (the reference oracle, kept below) and
the batched numpy ``vector`` kernel in :mod:`.vector` (the default).
Select per call with ``kernel=`` or globally with
``REPRO_SIM_KERNEL=scalar|vector``.
"""

from __future__ import annotations

import numpy as np

from ..kernels import active_kernel


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


class CacheConfig:
    """Geometry, write policy and optional victim buffer of one cache."""

    __slots__ = ("size", "block", "assoc", "write_allocate",
                 "victim_entries", "name")

    def __init__(self, size: int, block: int = 32, assoc: int = 1,
                 write_allocate: bool = True, victim_entries: int = 0,
                 name: str = "") -> None:
        if not (_is_pow2(size) and _is_pow2(block) and _is_pow2(assoc)):
            raise ValueError("size, block and associativity must be powers of 2")
        if size < block * assoc:
            raise ValueError("cache smaller than one set")
        if victim_entries < 0:
            raise ValueError("victim_entries must be >= 0")
        self.size = size
        self.block = block
        self.assoc = assoc
        self.write_allocate = write_allocate
        self.victim_entries = victim_entries
        policy = "" if write_allocate else "/wna"
        victim = f"+v{victim_entries}" if victim_entries else ""
        self.name = name or f"{size // 1024}K/{block}B/{assoc}way{policy}{victim}"

    @property
    def n_sets(self) -> int:
        return self.size // (self.block * self.assoc)

    def __repr__(self) -> str:
        return f"CacheConfig({self.name})"


class CacheStats:
    """Results of simulating one reference stream."""

    def __init__(self, n_groups: int, n_windows: int = 0) -> None:
        self.refs = np.zeros(n_groups, dtype=np.int64)
        self.misses = np.zeros(n_groups, dtype=np.int64)
        self.victim_hits = np.zeros(n_groups, dtype=np.int64)
        self.write_refs = np.zeros(n_groups, dtype=np.int64)
        self.write_misses = np.zeros(n_groups, dtype=np.int64)
        self.compulsory = np.zeros(n_groups, dtype=np.int64)
        self.window_misses = np.zeros(n_windows, dtype=np.int64)
        self.window_refs = np.zeros(n_windows, dtype=np.int64)

    @property
    def total_refs(self) -> int:
        return int(self.refs.sum())

    @property
    def total_misses(self) -> int:
        return int(self.misses.sum())

    @property
    def miss_rate(self) -> float:
        total = self.total_refs
        return self.total_misses / total if total else 0.0

    def group_miss_rate(self, g: int) -> float:
        return self.misses[g] / self.refs[g] if self.refs[g] else 0.0

    @property
    def effective_miss_rate(self) -> float:
        """Miss rate counting victim-buffer hits as hits (Jouppi)."""
        total = self.total_refs
        if not total:
            return 0.0
        return (self.total_misses - int(self.victim_hits.sum())) / total

    @property
    def write_miss_fraction(self) -> float:
        """Fraction of all misses that are write misses (Figure 3)."""
        total = self.total_misses
        return int(self.write_misses.sum()) / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"CacheStats(refs={self.total_refs}, misses={self.total_misses}, "
            f"rate={self.miss_rate:.4f})"
        )


class CacheSim:
    """One cache instance with persistent state across calls."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: list[dict[int, int]] = [dict() for _ in range(config.n_sets)]
        self._clock = 0
        self._seen_blocks: set[int] = set()
        self._victim: dict[int, int] = {}   # block -> lru stamp

    def reset(self) -> None:
        self._sets = [dict() for _ in range(self.config.n_sets)]
        self._clock = 0
        self._seen_blocks = set()
        self._victim = {}

    def run(
        self,
        addrs: np.ndarray,
        writes: np.ndarray | None = None,
        groups: np.ndarray | None = None,
        n_groups: int = 1,
        window: int = 0,
        kernel: str | None = None,
    ) -> CacheStats:
        """Simulate a reference stream.

        ``writes``: optional boolean array marking stores.
        ``groups``: optional small-int array attributing each reference to
        a statistics group.
        ``window``: if > 0, also record a (refs, misses) time series with
        that many references per window.
        ``kernel``: override the ``REPRO_SIM_KERNEL`` selection.
        """
        if active_kernel(kernel) == "vector":
            from .vector import run_vector
            return run_vector(self, addrs, writes, groups, n_groups, window)
        return self._run_scalar(addrs, writes, groups, n_groups, window)

    def _run_scalar(self, addrs, writes, groups, n_groups, window) -> CacheStats:
        """Reference oracle: the original event-at-a-time loop."""
        cfg = self.config
        block_shift = cfg.block.bit_length() - 1
        set_mask = cfg.n_sets - 1
        assoc = cfg.assoc

        n = len(addrs)
        n_windows = (n + window - 1) // window if window else 0
        stats = CacheStats(n_groups, n_windows)

        blocks = (np.asarray(addrs, dtype=np.int64) >> block_shift).tolist()
        write_list = (
            np.asarray(writes, dtype=bool).tolist() if writes is not None
            else None
        )
        group_list = (
            np.asarray(groups, dtype=np.int64).tolist() if groups is not None
            else None
        )

        write_allocate = cfg.write_allocate
        victim_entries = cfg.victim_entries
        victim = self._victim
        victim_hits = stats.victim_hits
        sets = self._sets
        seen = self._seen_blocks
        clock = self._clock
        refs = stats.refs
        misses = stats.misses
        write_refs = stats.write_refs
        write_misses = stats.write_misses
        compulsory = stats.compulsory
        wm = stats.window_misses
        wr = stats.window_refs

        for i, block in enumerate(blocks):
            g = group_list[i] if group_list is not None else 0
            is_write = write_list[i] if write_list is not None else False
            refs[g] += 1
            if is_write:
                write_refs[g] += 1
            if window:
                wr[i // window] += 1
            s = sets[block & set_mask]
            clock += 1
            if block in s:
                s[block] = clock
                continue
            # Miss path.
            misses[g] += 1
            if is_write:
                write_misses[g] += 1
            if block not in seen:
                compulsory[g] += 1
                seen.add(block)
            if window:
                wm[i // window] += 1
            if is_write and not write_allocate:
                continue   # write-around: the block is not installed
            if victim_entries and block in victim:
                victim_hits[g] += 1
                del victim[block]
            if len(s) >= assoc:
                evicted = min(s, key=s.get)
                del s[evicted]
                if victim_entries:
                    victim[evicted] = clock
                    if len(victim) > victim_entries:
                        oldest = min(victim, key=victim.get)
                        del victim[oldest]
            s[block] = clock

        self._clock = clock
        return stats


def simulate(addrs, writes=None, size=64 << 10, block=32, assoc=1,
             write_allocate=True, victim_entries=0,
             groups=None, n_groups=1, window=0,
             kernel=None) -> CacheStats:
    """One-shot convenience wrapper around :class:`CacheSim`."""
    sim = CacheSim(CacheConfig(size, block, assoc,
                               write_allocate=write_allocate,
                               victim_entries=victim_entries))
    return sim.run(addrs, writes=writes, groups=groups, n_groups=n_groups,
                   window=window, kernel=kernel)
