"""Cache simulation."""

from .cache import CacheConfig, CacheSim, CacheStats, simulate
from .harness import (
    DEFAULT_DCACHE,
    DEFAULT_ICACHE,
    SplitL1Result,
    data_stream,
    instruction_stream,
    simulate_split_l1,
)

__all__ = [
    "CacheConfig",
    "CacheSim",
    "CacheStats",
    "DEFAULT_DCACHE",
    "DEFAULT_ICACHE",
    "SplitL1Result",
    "data_stream",
    "instruction_stream",
    "simulate",
    "simulate_split_l1",
]
