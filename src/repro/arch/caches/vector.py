"""Batched numpy cache kernel — an exact replay of the scalar simulator.

All per-event bookkeeping (reference/write/window counts, compulsory
classification) vectorizes directly with ``np.bincount`` /
``np.add.reduceat`` / ``np.unique``.  Hit/miss classification is the
genuinely sequential part, split by geometry:

Direct-mapped
    Within a set the resident block is simply the block of the last
    *installing* access, so a stable sort by set index plus a running
    maximum over install positions (a forward fill) classifies every
    reference with no Python loop.  Under write-no-allocate only reads
    install, which the install mask expresses; everything else is
    unchanged.

Set-associative LRU
    Consecutive same-block accesses to a set are guaranteed hits once
    the first access of the run leaves the block resident — always
    true under write-allocate, and true after any *read* under
    write-no-allocate.  Real traces run-collapse dramatically (the
    interpreter's instruction stream collapses >100x), so only the
    collapsed "head" accesses replay through the exact dict-based LRU
    loop.  Each head's stamp is patched to the run-*last* event index,
    which is precisely the stamp the scalar loop would leave after the
    collapsed hits refreshed it.

The victim buffer never influences main-cache hit/miss classification,
so it replays separately over the (small) installing-miss stream.

Both paths read and write the scalar simulator's state
(``_sets``/``_clock``/``_seen_blocks``/``_victim``), so scalar and
vector runs interleave freely on one ``CacheSim`` instance.
"""

from __future__ import annotations

import numpy as np


def _state_prefix(sets_state):
    """Flatten persistent per-set contents into synthetic installing
    events (LRU-first so relative stamps are preserved)."""
    set_ids, blocks, stamps = [], [], []
    for set_id, contents in enumerate(sets_state):
        if not contents:
            continue
        for block, stamp in sorted(contents.items(), key=lambda kv: kv[1]):
            set_ids.append(set_id)
            blocks.append(block)
            stamps.append(stamp)
    return (
        np.asarray(set_ids, dtype=np.int64),
        np.asarray(blocks, dtype=np.int64),
        np.asarray(stamps, dtype=np.int64),
    )


def _sort_by_set(set_ids, n_sets):
    """Stable argsort by set index.

    Numpy's stable sort on integers is a radix sort whose cost scales
    with the key width; set indices are tiny, so sorting a narrowed
    copy of the key is several times faster than sorting the int64
    original (the returned order indexes the original arrays either
    way).
    """
    if n_sets <= 1 << 15:
        key = set_ids.astype(np.int16)
    elif n_sets <= 1 << 31:
        key = set_ids.astype(np.int32)
    else:  # pragma: no cover - no geometry has 2^31 sets
        key = set_ids
    return np.argsort(key, kind="stable")


def _classify_direct(cfg, sets_state, blocks, writes, clock0, need_installs):
    """Direct-mapped classification with no per-event Python loop.

    Returns ``(miss, installs)`` where ``installs`` is a list of
    ``(event_index, evicted_block_or_-1)`` for installing misses in
    event order (only populated when ``need_installs``).  Updates
    ``sets_state`` to the final contents.
    """
    n = len(blocks)
    set_mask = cfg.n_sets - 1
    sets = blocks & set_mask

    syn_sets, syn_blocks, syn_stamps = _state_prefix(sets_state)
    ns = len(syn_sets)
    m = ns + n

    if ns:
        set_ext = np.concatenate([syn_sets, sets])
        blk_ext = np.concatenate([syn_blocks, blocks])
        stamp_ext = np.empty(m, dtype=np.int64)
        stamp_ext[:ns] = syn_stamps
        stamp_ext[ns:] = clock0 + 1 + np.arange(n, dtype=np.int64)
    else:  # fresh simulator: skip the copies
        set_ext = sets
        blk_ext = blocks
        stamp_ext = clock0 + 1 + np.arange(n, dtype=np.int64)
    if cfg.write_allocate or writes is None:
        inst_ext = np.ones(m, dtype=bool)
    elif ns:  # write-no-allocate: only reads (and imported state) install
        inst_ext = np.concatenate([np.ones(ns, dtype=bool), ~writes])
    else:
        inst_ext = ~writes

    # Stable sort groups each set's events together in event order,
    # with the synthetic state prefix first.
    order = _sort_by_set(set_ext, cfg.n_sets)
    ss = set_ext[order]
    bs = blk_ext[order]
    inst = inst_ext[order]
    svs = stamp_ext[order]

    pos = np.arange(m, dtype=np.int64)
    newgrp = np.empty(m, dtype=bool)
    newgrp[0] = True
    newgrp[1:] = ss[1:] != ss[:-1]
    gstart = np.maximum.accumulate(np.where(newgrp, pos, 0))
    # Forward fill of the last installing position (inclusive / strict).
    last_inst = np.maximum.accumulate(np.where(inst, pos, np.int64(-1)))
    prev_inst = np.empty(m, dtype=np.int64)
    prev_inst[0] = -1
    prev_inst[1:] = last_inst[:-1]
    valid = prev_inst >= gstart
    resident = np.where(valid, bs[np.maximum(prev_inst, 0)], np.int64(-1))
    miss_s = resident != bs

    if ns:
        real = order >= ns
        orig = order[real] - ns
        miss = np.empty(n, dtype=bool)
        miss[orig] = miss_s[real]
    else:
        miss = np.empty(n, dtype=bool)
        miss[order] = miss_s

    installs: list[tuple[int, int]] = []
    if need_installs:
        sel = miss_s & inst
        if ns:
            sel &= real
        idxs = order[sel] - ns
        evicted = resident[sel]
        by_event = np.argsort(idxs)
        installs = list(zip(idxs[by_event].tolist(),
                            evicted[by_event].tolist()))

    # -- export final per-set state -----------------------------------
    starts = np.flatnonzero(newgrp)
    end_pos = np.empty(len(starts), dtype=np.int64)
    end_pos[:-1] = starts[1:] - 1
    end_pos[-1] = m - 1
    touched_sets = ss[end_pos]
    li_end = last_inst[end_pos]
    have = li_end >= gstart[end_pos]
    res_final = np.where(have, bs[np.maximum(li_end, 0)], np.int64(-1))
    # Final stamp: positions at/after the final install that touch the
    # resident are the install itself and its hits, and stamps grow
    # with position — so it sits at max(last install, last hit).
    last_hit = np.maximum.reduceat(
        np.where(miss_s, np.int64(-1), pos), starts)
    stamp_pos = np.maximum(last_hit, li_end)
    best = svs[np.maximum(stamp_pos, 0)]
    for set_id, block, stamp, present in zip(
        touched_sets.tolist(), res_final.tolist(), best.tolist(),
        have.tolist()
    ):
        sets_state[set_id] = {block: stamp} if present else {}
    return miss, installs


def _classify_assoc2(cfg, sets_state, blocks, writes, clock0,
                     need_installs):
    """Exact 2-way LRU with no Python loop over events.

    After run-collapse the per-set head sequence is consecutive-
    distinct, so by induction the LRU stack after head ``i`` is always
    exactly ``[b[i], b[i-1]]`` — whether ``i`` hit or missed.  A head
    therefore hits iff its block equals the head two back in the same
    set, and a full-set miss evicts that two-back block.  Only valid
    when every access installs (write-allocate, or no write stream),
    which is what makes collapsed followers guaranteed hits.
    """
    n = len(blocks)
    set_mask = cfg.n_sets - 1
    sets = blocks & set_mask

    syn_sets, syn_blocks, syn_stamps = _state_prefix(sets_state)
    ns = len(syn_sets)
    m = ns + n
    if ns:
        set_ext = np.concatenate([syn_sets, sets])
        blk_ext = np.concatenate([syn_blocks, blocks])
        stamp_ext = np.empty(m, dtype=np.int64)
        stamp_ext[:ns] = syn_stamps
        stamp_ext[ns:] = clock0 + 1 + np.arange(n, dtype=np.int64)
    else:
        set_ext = sets
        blk_ext = blocks
        stamp_ext = clock0 + 1 + np.arange(n, dtype=np.int64)

    order = _sort_by_set(set_ext, cfg.n_sets)
    bs = blk_ext[order]
    # Same block implies same set, so block equality alone collapses.
    same = np.empty(m, dtype=bool)
    same[0] = False
    same[1:] = bs[1:] == bs[:-1]
    head_pos = np.flatnonzero(~same)
    h = len(head_pos)
    run_last = np.empty(h, dtype=np.int64)
    run_last[:-1] = head_pos[1:] - 1
    run_last[-1] = m - 1
    h_stamp = stamp_ext[order[run_last]]

    hb = bs[head_pos]
    hs = hb & set_mask
    newh = np.empty(h, dtype=bool)
    newh[0] = True
    newh[1:] = hs[1:] != hs[:-1]
    hit = np.zeros(h, dtype=bool)
    if h > 2:
        # i-1 and i-2 both in this set, and the two-back block matches.
        full = ~newh[2:] & ~newh[1:-1]
        hit[2:] = full & (hb[2:] == hb[:-2])

    h_orig = order[head_pos]
    real_h = h_orig >= ns
    miss = np.zeros(n, dtype=bool)
    miss[h_orig[real_h] - ns] = ~hit[real_h]

    installs: list[tuple[int, int]] = []
    if need_installs:
        sel = real_h & ~hit
        idxs = h_orig[sel] - ns
        evicted = np.full(h, np.int64(-1))
        if h > 2:
            two_back_ok = ~newh[2:] & ~newh[1:-1]
            evicted[2:] = np.where(two_back_ok, hb[:-2], np.int64(-1))
        evicted = evicted[sel]
        by_event = np.argsort(idxs)
        installs = list(zip(idxs[by_event].tolist(),
                            evicted[by_event].tolist()))

    # -- export final per-set state: the last two heads of each set ---
    endh = np.empty(h, dtype=bool)
    endh[-1] = True
    endh[:-1] = newh[1:]
    last = np.flatnonzero(endh)
    hb_l = hb[last].tolist()
    st_l = h_stamp[last].tolist()
    prev_ok = (last > 0) & ~newh[last]
    hb_p = np.where(prev_ok, hb[np.maximum(last - 1, 0)], -1).tolist()
    st_p = np.where(prev_ok, h_stamp[np.maximum(last - 1, 0)], -1).tolist()
    for set_id, bl, sl, ok, bp, sp in zip(
        hs[last].tolist(), hb_l, st_l, prev_ok.tolist(), hb_p, st_p
    ):
        sets_state[set_id] = {bp: sp, bl: sl} if ok else {bl: sl}
    return miss, installs


def _classify_assoc(cfg, sets_state, blocks, writes, clock0, need_installs):
    """Set-associative LRU via run-collapse plus an exact head replay.

    Mutates ``sets_state`` in place (the same dicts the scalar loop
    uses); returns ``(miss, installs)`` like :func:`_classify_direct`.
    """
    n = len(blocks)
    set_mask = cfg.n_sets - 1
    assoc = cfg.assoc
    wna = not cfg.write_allocate
    sets = blocks & set_mask

    order = _sort_by_set(sets, cfg.n_sets)
    bs = blocks[order]
    same = np.empty(n, dtype=bool)
    same[0] = False
    # Same block implies same set, so block equality alone collapses.
    same[1:] = bs[1:] == bs[:-1]
    if wna and writes is not None:
        # Only an access following a *read* of the same block is a
        # guaranteed hit (the read either hit or installed the block).
        prev_read = np.empty(n, dtype=bool)
        prev_read[0] = False
        prev_read[1:] = ~writes[order][:-1]
        collapsed = same & prev_read
    else:
        collapsed = same
    head_pos = np.flatnonzero(~collapsed)
    run_last = np.empty(len(head_pos), dtype=np.int64)
    run_last[:-1] = head_pos[1:] - 1
    run_last[-1] = n - 1
    # The stamp each head leaves behind: the collapsed followers are
    # hits that refresh it up to the run's last event.
    head_stamps = clock0 + 1 + order[run_last]

    head_orig = order[head_pos]
    by_event = np.argsort(head_orig)  # replay heads in global order
    head_orig = head_orig[by_event]
    h_idx = head_orig.tolist()
    h_block_arr = bs[head_pos][by_event]
    h_block = h_block_arr.tolist()
    h_set = (h_block_arr & set_mask).tolist()
    h_stamp = head_stamps[by_event].tolist()
    h_write = (writes[head_orig].tolist()
               if wna and writes is not None else None)

    miss = np.zeros(n, dtype=bool)
    installs: list[tuple[int, int]] = []
    record = installs.append
    if h_write is None:
        for idx, block, set_id, stamp in zip(h_idx, h_block, h_set,
                                             h_stamp):
            contents = sets_state[set_id]
            if block in contents:
                contents[block] = stamp
                continue
            miss[idx] = True
            if len(contents) >= assoc:
                evicted = min(contents, key=contents.get)
                del contents[evicted]
                if need_installs:
                    record((idx, evicted))
            elif need_installs:
                record((idx, -1))
            contents[block] = stamp
    else:
        for idx, block, set_id, stamp, write in zip(h_idx, h_block,
                                                    h_set, h_stamp,
                                                    h_write):
            contents = sets_state[set_id]
            if block in contents:
                contents[block] = stamp
                continue
            miss[idx] = True
            if write:
                continue  # write-around: not installed
            if len(contents) >= assoc:
                evicted = min(contents, key=contents.get)
                del contents[evicted]
                if need_installs:
                    record((idx, evicted))
            elif need_installs:
                record((idx, -1))
            contents[block] = stamp
    return miss, installs


def classify(cfg, sets_state, blocks, writes, clock0, need_installs=False):
    """Hit/miss classification for one reference stream, updating
    ``sets_state`` exactly as the scalar loop would."""
    if cfg.assoc == 1:
        return _classify_direct(cfg, sets_state, blocks, writes, clock0,
                                need_installs)
    if cfg.assoc == 2 and (writes is None or cfg.write_allocate):
        return _classify_assoc2(cfg, sets_state, blocks, writes, clock0,
                                need_installs)
    return _classify_assoc(cfg, sets_state, blocks, writes, clock0,
                           need_installs)


def miss_stream(size, block, assoc, addrs):
    """Boolean miss mask of a fresh write-allocate LRU cache over
    ``addrs`` (the pipeline model's inline caches)."""
    from .cache import CacheConfig

    cfg = CacheConfig(size, block, assoc)
    state = [dict() for _ in range(cfg.n_sets)]
    blocks = np.asarray(addrs, dtype=np.int64) >> (block.bit_length() - 1)
    if len(blocks) == 0:
        return np.zeros(0, dtype=bool)
    miss, _ = classify(cfg, state, blocks, None, 0)
    return miss


def run_vector(sim, addrs, writes, groups, n_groups, window):
    """Vector implementation of :meth:`CacheSim.run` (bit-identical to
    the scalar loop, including persistent state)."""
    from .cache import CacheStats

    cfg = sim.config
    n = len(addrs)
    n_windows = (n + window - 1) // window if window else 0
    stats = CacheStats(n_groups, n_windows)
    if n == 0:
        return stats

    block_shift = cfg.block.bit_length() - 1
    blocks = np.asarray(addrs, dtype=np.int64) >> block_shift
    w = None if writes is None else np.asarray(writes, dtype=bool)
    g = None if groups is None else np.asarray(groups, dtype=np.int64)
    clock0 = sim._clock

    miss, installs = classify(cfg, sim._sets, blocks, w, clock0,
                              need_installs=cfg.victim_entries > 0)

    # -- hoisted per-event bookkeeping --------------------------------
    if g is None:
        stats.refs[0] = n
        stats.misses[0] = int(miss.sum())
        if w is not None:
            stats.write_refs[0] = int(w.sum())
            stats.write_misses[0] = int((miss & w).sum())
    else:
        stats.refs += np.bincount(g, minlength=n_groups)
        stats.misses += np.bincount(g[miss], minlength=n_groups)
        if w is not None:
            stats.write_refs += np.bincount(g[w], minlength=n_groups)
            stats.write_misses += np.bincount(g[miss & w],
                                              minlength=n_groups)
    if window:
        edges = np.arange(0, n, window, dtype=np.int64)
        stats.window_refs += np.add.reduceat(
            np.ones(n, dtype=np.int64), edges)
        stats.window_misses += np.add.reduceat(
            miss.astype(np.int64), edges)

    # Compulsory misses: the first *miss* of a block never seen before.
    seen = sim._seen_blocks
    miss_idx = np.flatnonzero(miss)
    if len(miss_idx):
        uniq, first = np.unique(blocks[miss_idx], return_index=True)
        if seen:
            known = np.fromiter(seen, dtype=np.int64, count=len(seen))
            fresh = ~np.isin(uniq, known)
        else:
            fresh = np.ones(len(uniq), dtype=bool)
        first_new = miss_idx[first[fresh]]
        if g is None:
            stats.compulsory[0] = len(first_new)
        else:
            stats.compulsory += np.bincount(g[first_new],
                                            minlength=n_groups)
        seen.update(uniq[fresh].tolist())

    # -- victim buffer: a pure derived stream over installing misses --
    if cfg.victim_entries and installs:
        victim = sim._victim
        limit = cfg.victim_entries
        victim_hits = stats.victim_hits
        group_list = g.tolist() if g is not None else None
        block_list = blocks.tolist()
        for i, evicted in installs:
            block = block_list[i]
            if block in victim:
                victim_hits[group_list[i] if group_list else 0] += 1
                del victim[block]
            if evicted >= 0:
                victim[evicted] = clock0 + i + 1
                if len(victim) > limit:
                    oldest = min(victim, key=victim.get)
                    del victim[oldest]

    sim._clock = clock0 + n
    return stats
