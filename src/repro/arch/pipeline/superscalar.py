"""Trace-driven superscalar pipeline model (Figures 9 and 10).

An out-of-order-completion, W-wide-fetch model with the structures that
dominate wide-issue behaviour for this study:

- W-way fetch, one taken control transfer per cycle,
- gshare + BTB + return-address stack steering the front end; a
  mispredict stalls fetch until the branch resolves, plus a redirect
  penalty,
- split L1 caches; an I-miss stalls fetch, a D-miss lengthens the
  load's latency (and thereby dependent instructions and branch
  resolution),
- a reorder buffer bounding in-flight instructions; register
  dependences delay an instruction's start, in-order retirement frees
  ROB slots.

The absolute IPC is a model artifact; the experiments use its *relative*
behaviour across modes and widths, as the paper does.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ...native.nisa import FLAG_TAKEN, FLAG_WRITE, NCat
from ..branch.predictors import BTB, Gshare
from ..kernels import active_kernel

#: Execution latency per category (cycles).
LATENCY = {
    int(NCat.NOP): 1, int(NCat.IALU): 1, int(NCat.IMUL): 4,
    int(NCat.IDIV): 20, int(NCat.FALU): 3, int(NCat.FMUL): 4,
    int(NCat.FDIV): 12, int(NCat.LOAD): 2, int(NCat.STORE): 1,
    int(NCat.BRANCH): 1, int(NCat.JUMP): 1, int(NCat.IJUMP): 1,
    int(NCat.CALL): 1, int(NCat.ICALL): 1, int(NCat.RET): 1,
}


class PipelineConfig:
    """Machine parameters."""

    def __init__(
        self,
        width: int = 4,
        rob_size: int = 64,
        mispredict_penalty: int = 4,
        icache_size: int = 64 << 10,
        dcache_size: int = 64 << 10,
        block: int = 32,
        icache_assoc: int = 2,
        dcache_assoc: int = 4,
        imiss_penalty: int = 8,
        dmiss_penalty: int = 8,
    ) -> None:
        self.width = width
        self.rob_size = rob_size
        self.mispredict_penalty = mispredict_penalty
        self.icache_size = icache_size
        self.dcache_size = dcache_size
        self.block = block
        self.icache_assoc = icache_assoc
        self.dcache_assoc = dcache_assoc
        self.imiss_penalty = imiss_penalty
        self.dmiss_penalty = dmiss_penalty

    def __repr__(self) -> str:
        return f"PipelineConfig(width={self.width})"


class _InlineCache:
    """Minimal LRU set-associative cache for the pipeline's inner loop."""

    __slots__ = ("sets", "set_mask", "block_shift", "assoc", "clock")

    def __init__(self, size: int, block: int, assoc: int) -> None:
        n_sets = size // (block * assoc)
        self.sets = [dict() for _ in range(n_sets)]
        self.set_mask = n_sets - 1
        self.block_shift = block.bit_length() - 1
        self.assoc = assoc
        self.clock = 0

    def access(self, addr: int) -> bool:
        """True on hit."""
        block = addr >> self.block_shift
        s = self.sets[block & self.set_mask]
        self.clock += 1
        if block in s:
            s[block] = self.clock
            return True
        if len(s) >= self.assoc:
            victim = min(s, key=s.get)
            del s[victim]
        s[block] = self.clock
        return False


class PipelineResult:
    """IPC and component counts for one simulation."""

    def __init__(self, instructions: int, cycles: int,
                 mispredicts: int, imisses: int, dmisses: int) -> None:
        self.instructions = instructions
        self.cycles = max(cycles, 1)
        self.mispredicts = mispredicts
        self.imisses = imisses
        self.dmisses = dmisses

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles

    def __repr__(self) -> str:
        return (
            f"PipelineResult(ipc={self.ipc:.2f}, n={self.instructions}, "
            f"cycles={self.cycles})"
        )


def simulate_pipeline(trace, config: PipelineConfig | None = None,
                      kernel: str | None = None) -> PipelineResult:
    """Run a native trace through the pipeline model.

    Accepts a :class:`Trace` or an ``analysis.replay.TraceReplay``.
    """
    trace = getattr(trace, "trace", trace)
    cfg = config or PipelineConfig()
    if active_kernel(kernel) == "vector":
        return _simulate_vector(trace, cfg)
    return _simulate_scalar(trace, cfg)


def _simulate_scalar(trace, cfg: PipelineConfig) -> PipelineResult:
    """Reference oracle: the original per-event scheduler loop."""
    n = trace.n
    if n == 0:
        return PipelineResult(0, 1, 0, 0, 0)

    pcs = trace.pc.tolist()
    cats = trace.cat.tolist()
    eas = trace.ea.tolist()
    flags = trace.flags.tolist()
    targets = trace.target.tolist()
    dsts = trace.dst.tolist()
    src1s = trace.src1.tolist()
    src2s = trace.src2.tolist()

    icache = _InlineCache(cfg.icache_size, cfg.block, cfg.icache_assoc)
    dcache = _InlineCache(cfg.dcache_size, cfg.block, cfg.dcache_assoc)
    predictor = Gshare()
    btb = BTB()
    ras: list[int] = []

    latency = LATENCY
    BRANCH, JUMP, CALL = int(NCat.BRANCH), int(NCat.JUMP), int(NCat.CALL)
    ICALL, IJUMP, RET = int(NCat.ICALL), int(NCat.IJUMP), int(NCat.RET)
    LOAD, STORE = int(NCat.LOAD), int(NCat.STORE)
    W = cfg.width
    ROB = cfg.rob_size
    MISP = cfg.mispredict_penalty
    IMISS = cfg.imiss_penalty
    DMISS = cfg.dmiss_penalty

    ready = [0] * 33          # per-register availability (index -1 -> [32])
    rob: deque[int] = deque()
    cycle = 0
    slots = 0                  # fetch slots used this cycle
    last_done = 0
    mispredicts = imisses = dmisses = 0

    for i in range(n):
        cat = cats[i]
        # -- fetch ------------------------------------------------------
        if slots >= W:
            cycle += 1
            slots = 0
        if not icache.access(pcs[i]):
            imisses += 1
            cycle += IMISS
            slots = 0
        # -- ROB space ---------------------------------------------------
        while len(rob) >= ROB:
            head = rob.popleft()
            if head > cycle:
                cycle = head
                slots = 0
        # -- dependences / execute ----------------------------------------
        # In-order issue (UltraSPARC-class): an instruction whose
        # operands are not ready stalls issue, so dense dependence
        # chains (compiled code) pay; independent filler (interpreter
        # handler bookkeeping) streams through.
        start = cycle + 1
        s1, s2 = src1s[i], src2s[i]
        if s1 >= 0 and ready[s1] > start:
            start = ready[s1]
        if s2 >= 0 and ready[s2] > start:
            start = ready[s2]
        if start > cycle + 1:
            cycle = start - 1
            slots = 0
        lat = latency[cat]
        if cat == LOAD:
            if not dcache.access(eas[i]):
                dmisses += 1
                lat += DMISS
        elif cat == STORE:
            if not dcache.access(eas[i]):
                dmisses += 1   # write-allocate fill, but stores retire early
        done = start + lat
        dst = dsts[i]
        if dst >= 0:
            ready[dst] = done
        rob.append(done)
        if done > last_done:
            last_done = done
        slots += 1

        # -- control transfers -------------------------------------------
        if cat >= BRANCH:
            pc = pcs[i]
            taken = bool(flags[i] & FLAG_TAKEN)
            target = targets[i]
            mispredicted = False
            if cat == BRANCH:
                predicted = predictor.predict(pc)
                if predicted != taken:
                    mispredicted = True
                elif taken and btb.lookup(pc) != target:
                    mispredicted = True
                predictor.update(pc, taken)
                if taken:
                    btb.update(pc, target)
            elif cat in (JUMP, CALL):
                if cat == CALL:
                    ras.append(pc + 4)
                    if len(ras) > 16:
                        del ras[0]
            elif cat == RET:
                predicted_target = ras.pop() if ras else btb.lookup(pc)
                mispredicted = predicted_target != target
                btb.update(pc, target)
            else:  # IJUMP / ICALL
                mispredicted = btb.lookup(pc) != target
                btb.update(pc, target)
                if cat == ICALL:
                    ras.append(pc + 4)
                    if len(ras) > 16:
                        del ras[0]
            if mispredicted:
                mispredicts += 1
                # Fixed redirect penalty (shallow late-90s pipelines).
                cycle += MISP
                slots = 0
            elif taken:
                # Taken transfer ends the fetch group.
                cycle += 1
                slots = 0

    total_cycles = max(cycle, last_done)
    return PipelineResult(n, total_cycles, mispredicts, imisses, dmisses)


def _simulate_vector(trace, cfg: PipelineConfig) -> PipelineResult:
    """Vector kernel: every cache access, branch prediction and latency
    is precomputed in batch, leaving a scheduler loop that reads five
    small chunked columns instead of eight full ones plus three
    simulator state machines."""
    n = trace.n
    if n == 0:
        return PipelineResult(0, 1, 0, 0, 0)

    from ..branch.vector import BranchReplayContext
    from ..caches.vector import miss_stream

    pc = np.asarray(trace.pc, dtype=np.int64)
    cat = np.asarray(trace.cat, dtype=np.int64)
    taken = (np.asarray(trace.flags) & FLAG_TAKEN) != 0
    target = np.asarray(trace.target, dtype=np.int64)

    BRANCH = int(NCat.BRANCH)
    LOAD, STORE = int(NCat.LOAD), int(NCat.STORE)

    # -- caches: per-event miss masks ---------------------------------
    imiss = miss_stream(cfg.icache_size, cfg.block, cfg.icache_assoc, pc)
    mem_idx = np.flatnonzero((cat == LOAD) | (cat == STORE))
    dmiss = np.zeros(n, dtype=bool)
    dmiss[mem_idx] = miss_stream(
        cfg.dcache_size, cfg.block, cfg.dcache_assoc,
        np.asarray(trace.ea, dtype=np.int64)[mem_idx])

    # -- effective latency per event ----------------------------------
    lat_table = np.zeros(max(LATENCY) + 1, dtype=np.int64)
    for c, v in LATENCY.items():
        lat_table[c] = v
    lat = lat_table[cat]
    lat[(cat == LOAD) & dmiss] += cfg.dmiss_penalty

    # -- branch outcomes ----------------------------------------------
    transfer_idx = np.flatnonzero(cat >= BRANCH)
    misp = np.zeros(n, dtype=bool)
    if len(transfer_idx):
        ctx = BranchReplayContext(
            pc[transfer_idx], cat[transfer_idx], taken[transfer_idx],
            target[transfer_idx])
        predicted = Gshare().predict_batch(ctx.cond_pc, ctx.cond_taken)
        wrong_dir = predicted != ctx.cond_taken
        misp_tr = np.zeros(ctx.n, dtype=bool)
        misp_tr[np.flatnonzero(ctx.is_branch)] = wrong_dir | (
            ctx.cond_taken & ~wrong_dir & ~ctx.btb_correct[ctx.is_branch])
        misp_tr[ctx.is_ijc] = ~ctx.btb_correct[ctx.is_ijc]
        used, popped = ctx.ras_outcome(trim_call=True)
        ret_idx = np.flatnonzero(ctx.is_ret)
        misp_tr[ret_idx] = np.where(used, popped != ctx.target[ret_idx],
                                    ~ctx.btb_correct[ret_idx])
        misp[transfer_idx] = misp_tr

    # Per-event fetch-disruption code: bit 0 = I-miss, upper bits =
    # control outcome (0 none, 1 taken transfer, 2 mispredict).
    control = np.zeros(n, dtype=np.int64)
    control[(cat >= BRANCH) & taken] = 1
    control[misp] = 2
    code = (control << 1) | imiss

    mispredicts = int(misp.sum())
    imisses = int(imiss.sum())
    dmisses = int(dmiss.sum())

    # -- scheduler loop over chunked views ----------------------------
    dst_col = np.asarray(trace.dst)
    src1_col = np.asarray(trace.src1)
    src2_col = np.asarray(trace.src2)
    W = cfg.width
    ROB = cfg.rob_size
    MISP = cfg.mispredict_penalty
    IMISS = cfg.imiss_penalty

    ready = [0] * 33
    rob: deque[int] = deque()
    cycle = 0
    slots = 0
    last_done = 0
    CHUNK = 1 << 16
    for lo in range(0, n, CHUNK):
        hi = min(lo + CHUNK, n)
        codes = code[lo:hi].tolist()
        lats = lat[lo:hi].tolist()
        dsts = dst_col[lo:hi].tolist()
        src1s = src1_col[lo:hi].tolist()
        src2s = src2_col[lo:hi].tolist()
        for k in range(hi - lo):
            if slots >= W:
                cycle += 1
                slots = 0
            c = codes[k]
            if c & 1:
                cycle += IMISS
                slots = 0
            while len(rob) >= ROB:
                head = rob.popleft()
                if head > cycle:
                    cycle = head
                    slots = 0
            start = cycle + 1
            s1, s2 = src1s[k], src2s[k]
            if s1 >= 0 and ready[s1] > start:
                start = ready[s1]
            if s2 >= 0 and ready[s2] > start:
                start = ready[s2]
            if start > cycle + 1:
                cycle = start - 1
                slots = 0
            done = start + lats[k]
            dst = dsts[k]
            if dst >= 0:
                ready[dst] = done
            rob.append(done)
            if done > last_done:
                last_done = done
            slots += 1
            c >>= 1
            if c:
                if c == 2:
                    cycle += MISP
                else:
                    cycle += 1
                slots = 0

    return PipelineResult(n, max(cycle, last_done), mispredicts, imisses,
                          dmisses)


def ipc_by_width(trace, widths=(1, 2, 4, 8), **kwargs) -> dict[int, PipelineResult]:
    """Figure 9's sweep: IPC at several issue widths."""
    return {
        w: simulate_pipeline(trace, PipelineConfig(width=w, **kwargs))
        for w in widths
    }
