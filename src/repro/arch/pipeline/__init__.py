"""Superscalar pipeline model."""

from .superscalar import (
    LATENCY,
    PipelineConfig,
    PipelineResult,
    ipc_by_width,
    simulate_pipeline,
)

__all__ = [
    "LATENCY",
    "PipelineConfig",
    "PipelineResult",
    "ipc_by_width",
    "simulate_pipeline",
]
