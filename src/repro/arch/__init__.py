"""Architectural simulators: caches, branch prediction, pipeline."""
