"""Simulation-kernel selection.

Every hot simulator (cache, branch, pipeline) has two implementations:

- ``scalar`` — the original event-at-a-time Python loops, kept as the
  reference oracle;
- ``vector`` — batched numpy kernels that produce bit-identical
  results (the default).

The kernel is chosen per call: an explicit ``kernel=`` argument wins,
then the ``REPRO_SIM_KERNEL`` environment variable (consulted at call
time so tests and benchmarks can flip it), then the default.
"""

from __future__ import annotations

import os

KERNELS = ("scalar", "vector")

ENV_VAR = "REPRO_SIM_KERNEL"

DEFAULT_KERNEL = "vector"


def active_kernel(override: str | None = None) -> str:
    """Resolve the kernel to use for one simulator call."""
    kernel = override or os.environ.get(ENV_VAR) or DEFAULT_KERNEL
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown simulation kernel {kernel!r}; expected one of {KERNELS}"
        )
    return kernel
