"""Branch prediction."""

from .indirect import (
    HybridIndirectPredictor,
    INDIRECT_PREDICTORS,
    TargetCache,
    run_indirect_predictor,
)
from .predictors import (
    BTB,
    BimodalBHT,
    BranchSimResult,
    DirectionPredictor,
    GAp,
    Gshare,
    PREDICTORS,
    SingleTwoBit,
    compare_predictors,
    extract_transfers,
    run_predictor,
)

__all__ = [
    "BTB",
    "HybridIndirectPredictor",
    "INDIRECT_PREDICTORS",
    "TargetCache",
    "run_indirect_predictor",
    "BimodalBHT",
    "BranchSimResult",
    "DirectionPredictor",
    "GAp",
    "Gshare",
    "PREDICTORS",
    "SingleTwoBit",
    "compare_predictors",
    "extract_transfers",
    "run_predictor",
]
