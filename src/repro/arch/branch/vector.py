"""Vectorized branch-prediction replay — exact, shared-context.

The expensive sequential state machines are the *direction* predictor
tables, which only ever see conditional branches; they run over
pre-extracted (pc, taken) subarrays via each predictor's
``predict_batch`` tight loop.  Everything else about a transfer stream
is statically known:

- category masks and transfer/conditional/indirect counts vectorize
  directly;
- the BTB's update stream does not depend on any prediction (taken
  branches, returns and indirect jumps/calls always update it), and a
  lookup precedes the same event's update — so every lookup resolves
  offline with one sort plus ``np.searchsorted`` over
  ``(slot, position)`` keys;
- the return-address stack only changes on CALL/ICALL/RET events and
  replays over that small subset.

A :class:`BranchReplayContext` computes all of this once per transfer
stream; it is immutable, so any number of predictors (Table 2 runs
four) share one context.
"""

from __future__ import annotations

import numpy as np

from ...native.nisa import NCat

_BRANCH = int(NCat.BRANCH)
_JUMP = int(NCat.JUMP)
_CALL = int(NCat.CALL)
_IJUMP = int(NCat.IJUMP)
_ICALL = int(NCat.ICALL)
_RET = int(NCat.RET)


def replay_ras(pcs, cats, trim_call):
    """Replay the return-address stack over CALL/ICALL/RET events.

    Returns ``(used, popped)`` aligned to the RET events: whether the
    stack was non-empty, and the value popped when it was.
    ``trim_call`` selects whether direct calls also trim the stack to
    16 entries (the pipeline model does; ``run_predictor`` only trims
    on indirect calls).
    """
    sub = np.flatnonzero(np.isin(cats, (_CALL, _ICALL, _RET)))
    used: list[bool] = []
    popped: list[int] = []
    ras: list[int] = []
    for pc, cat in zip(pcs[sub].tolist(), cats[sub].tolist()):
        if cat == _RET:
            if ras:
                used.append(True)
                popped.append(ras.pop())
            else:
                used.append(False)
                popped.append(0)
        else:
            ras.append(pc + 4)
            if (cat == _ICALL or trim_call) and len(ras) > 16:
                del ras[0]
    return (np.asarray(used, dtype=bool),
            np.asarray(popped, dtype=np.int64))


class BranchReplayContext:
    """Predictor-independent replay state of one transfer stream."""

    def __init__(self, pcs, cats, takens, targets,
                 btb_entries: int = 1024, use_ras: bool = True) -> None:
        self.pc = np.asarray(pcs, dtype=np.int64)
        self.cat = np.asarray(cats, dtype=np.int64)
        self.taken = np.asarray(takens, dtype=bool)
        self.target = np.asarray(targets, dtype=np.int64)
        self.btb_entries = btb_entries
        self.use_ras = use_ras
        self.n = len(self.pc)

        cat = self.cat
        self.is_branch = cat == _BRANCH
        self.is_ret = cat == _RET
        self.is_ijc = (cat == _IJUMP) | (cat == _ICALL)
        self.cond_pc = self.pc[self.is_branch]
        self.cond_taken = self.taken[self.is_branch]
        self.conditional = int(self.is_branch.sum())
        self.indirect = int(self.is_ret.sum() + self.is_ijc.sum())

        # BTB lookups resolved offline.  Update events = taken branches,
        # returns and indirect jumps/calls; lookups happen on exactly
        # the same events, strictly before the event's own update.
        touched = (self.is_branch & self.taken) | self.is_ret | self.is_ijc
        self.btb_correct = np.zeros(self.n, dtype=bool)
        pos = np.flatnonzero(touched)
        if len(pos):
            pc_t = self.pc[pos]
            target_t = self.target[pos]
            slot = (pc_t >> 2) % btb_entries
            key = slot * np.int64(self.n + 1) + pos
            by_key = np.argsort(key)
            skey = key[by_key]
            sslot = slot[by_key]
            spc = pc_t[by_key]
            starget = target_t[by_key]
            before = np.searchsorted(skey, key) - 1
            clipped = np.maximum(before, 0)
            hit = ((before >= 0)
                   & (sslot[clipped] == slot)
                   & (spc[clipped] == pc_t)
                   & (starget[clipped] == target_t))
            self.btb_correct[pos] = hit

        self._ras_memo: dict[bool, tuple[np.ndarray, np.ndarray]] = {}

    def ras_outcome(self, trim_call: bool):
        """Memoized RAS replay (``(used, popped)`` over RET events)."""
        hit = self._ras_memo.get(trim_call)
        if hit is None:
            hit = replay_ras(self.pc, self.cat, trim_call)
            self._ras_memo[trim_call] = hit
        return hit


def run_with_context(predictor, ctx: BranchReplayContext):
    """Drive one direction predictor over a shared replay context.

    Bit-identical to the scalar ``run_predictor`` loop.
    """
    from .predictors import BranchSimResult

    result = BranchSimResult()
    result.transfers = ctx.n
    result.conditional = ctx.conditional
    result.indirect = ctx.indirect
    if ctx.n == 0:
        return result

    predicted = predictor.predict_batch(ctx.cond_pc, ctx.cond_taken)
    wrong_dir = predicted != ctx.cond_taken
    result.cond_mispredicts = int(wrong_dir.sum())
    # Right-direction taken branches still need the target from the BTB.
    branch_target_miss = int(
        (ctx.cond_taken & ~wrong_dir & ~ctx.btb_correct[ctx.is_branch]).sum()
    )
    ijc_miss = int((~ctx.btb_correct[ctx.is_ijc]).sum())
    if ctx.use_ras:
        used, popped = ctx.ras_outcome(trim_call=False)
        ret_miss = int(np.where(
            used,
            popped != ctx.target[ctx.is_ret],
            ~ctx.btb_correct[ctx.is_ret],
        ).sum())
    else:
        ret_miss = int((~ctx.btb_correct[ctx.is_ret]).sum())
    result.target_mispredicts = branch_target_miss + ijc_miss + ret_miss
    result.indirect_mispredicts = ijc_miss + ret_miss
    return result
