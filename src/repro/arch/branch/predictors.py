"""Branch predictors (Table 2) and the branch target buffer.

Four direction predictors, matching the paper's setup: a single shared
2-bit counter (validation baseline), a 1-level 2K-entry branch history
table, Gshare with 5 bits of global history, and a GAp two-level
predictor (2K-entry per-address history, 256-entry second level).
Targets of taken transfers are predicted by a 1K-entry BTB; returns use
a small return-address stack.

A control transfer counts as mispredicted when its direction is wrong
(conditional branches) or its target is wrong (any taken transfer) —
which is what makes the interpreter's switch-dispatch indirect jump,
one pc with ~80 targets, so costly.
"""

from __future__ import annotations

import numpy as np

from ...native.nisa import NCat
from ..kernels import active_kernel


def _aslist(values) -> list:
    """Plain Python list view of an array-like (fast-path lists)."""
    if isinstance(values, list):
        return values
    return np.asarray(values).tolist()


class TwoBitCounter:
    """Saturating 2-bit counter starting weakly taken."""

    __slots__ = ("value",)

    def __init__(self, value: int = 2) -> None:
        self.value = value

    def predict(self) -> bool:
        return self.value >= 2

    def update(self, taken: bool) -> None:
        if taken:
            self.value = min(3, self.value + 1)
        else:
            self.value = max(0, self.value - 1)


class DirectionPredictor:
    """Interface for direction predictors."""

    name = "abstract"

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError

    def predict_batch(self, pcs, takens) -> np.ndarray:
        """Predictions for a conditional-branch stream, advancing state
        exactly as per-event predict/update would.  Subclasses override
        with tight loops; this generic fallback keeps any custom
        predictor usable under the vector kernel."""
        out = []
        append = out.append
        for pc, taken in zip(_aslist(pcs), _aslist(takens)):
            append(self.predict(pc))
            self.update(pc, taken)
        return np.asarray(out, dtype=bool)


class SingleTwoBit(DirectionPredictor):
    """One shared 2-bit counter for every branch."""

    name = "2bit"

    def __init__(self) -> None:
        self._counter = 2

    def predict(self, pc: int) -> bool:
        return self._counter >= 2

    def update(self, pc: int, taken: bool) -> None:
        if taken:
            self._counter = min(3, self._counter + 1)
        else:
            self._counter = max(0, self._counter - 1)

    def predict_batch(self, pcs, takens) -> np.ndarray:
        counter = self._counter
        out = []
        append = out.append
        for taken in _aslist(takens):
            append(counter >= 2)
            if taken:
                if counter < 3:
                    counter += 1
            elif counter > 0:
                counter -= 1
        self._counter = counter
        return np.asarray(out, dtype=bool)


class BimodalBHT(DirectionPredictor):
    """1-level branch history table: 2-bit counters indexed by pc."""

    name = "bht"

    def __init__(self, entries: int = 2048) -> None:
        self.entries = entries
        self._table = [2] * entries

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        i = self._index(pc)
        v = self._table[i]
        self._table[i] = min(3, v + 1) if taken else max(0, v - 1)

    def predict_batch(self, pcs, takens) -> np.ndarray:
        table = self._table
        entries = self.entries
        words = (np.asarray(pcs, dtype=np.int64) >> 2).tolist()
        out = []
        append = out.append
        for word, taken in zip(words, _aslist(takens)):
            i = word % entries
            v = table[i]
            append(v >= 2)
            table[i] = min(3, v + 1) if taken else max(0, v - 1)
        return np.asarray(out, dtype=bool)


class Gshare(DirectionPredictor):
    """Global history XOR pc, 2-bit counters."""

    name = "gshare"

    def __init__(self, entries: int = 2048, history_bits: int = 5) -> None:
        self.entries = entries
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._history = 0
        self._table = [2] * entries

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) % self.entries

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        i = self._index(pc)
        v = self._table[i]
        self._table[i] = min(3, v + 1) if taken else max(0, v - 1)
        self._history = ((self._history << 1) | int(taken)) & self._mask

    def predict_batch(self, pcs, takens) -> np.ndarray:
        table = self._table
        entries = self.entries
        mask = self._mask
        history = self._history
        words = (np.asarray(pcs, dtype=np.int64) >> 2).tolist()
        out = []
        append = out.append
        for word, taken in zip(words, _aslist(takens)):
            i = (word ^ history) % entries
            v = table[i]
            append(v >= 2)
            table[i] = min(3, v + 1) if taken else max(0, v - 1)
            history = ((history << 1) | int(taken)) & mask
        self._history = history
        return np.asarray(out, dtype=bool)


class GAp(DirectionPredictor):
    """Two-level, per-address history (Yeh & Patt's GAp flavour):
    a 2K-entry first-level history table and a 256-entry second-level
    pattern table of 2-bit counters."""

    name = "gap"

    def __init__(self, l1_entries: int = 2048, l2_entries: int = 256,
                 history_bits: int = 5) -> None:
        self.l1_entries = l1_entries
        self.l2_entries = l2_entries
        self._hmask = (1 << history_bits) - 1
        self._histories = [0] * l1_entries
        self._counters = [2] * l2_entries

    def _l1(self, pc: int) -> int:
        return (pc >> 2) % self.l1_entries

    def predict(self, pc: int) -> bool:
        history = self._histories[self._l1(pc)]
        return self._counters[history % self.l2_entries] >= 2

    def update(self, pc: int, taken: bool) -> None:
        i = self._l1(pc)
        history = self._histories[i]
        j = history % self.l2_entries
        v = self._counters[j]
        self._counters[j] = min(3, v + 1) if taken else max(0, v - 1)
        self._histories[i] = ((history << 1) | int(taken)) & self._hmask

    def predict_batch(self, pcs, takens) -> np.ndarray:
        histories = self._histories
        counters = self._counters
        l1 = self.l1_entries
        l2 = self.l2_entries
        hmask = self._hmask
        words = (np.asarray(pcs, dtype=np.int64) >> 2).tolist()
        out = []
        append = out.append
        for word, taken in zip(words, _aslist(takens)):
            i = word % l1
            history = histories[i]
            j = history % l2
            v = counters[j]
            append(v >= 2)
            counters[j] = min(3, v + 1) if taken else max(0, v - 1)
            histories[i] = ((history << 1) | int(taken)) & hmask
        return np.asarray(out, dtype=bool)


class BTB:
    """Direct-mapped branch target buffer."""

    def __init__(self, entries: int = 1024) -> None:
        self.entries = entries
        self._tags = [-1] * entries
        self._targets = [0] * entries
        self.hits = 0
        self.misses = 0
        self.wrong_target = 0

    def lookup(self, pc: int) -> int | None:
        i = (pc >> 2) % self.entries
        if self._tags[i] == pc:
            return self._targets[i]
        return None

    def update(self, pc: int, target: int) -> None:
        i = (pc >> 2) % self.entries
        self._tags[i] = pc
        self._targets[i] = target


PREDICTORS = {
    "2bit": SingleTwoBit,
    "bht": BimodalBHT,
    "gshare": Gshare,
    "gap": GAp,
}


class BranchSimResult:
    """Outcome of running one predictor over a trace's transfers."""

    def __init__(self) -> None:
        self.transfers = 0
        self.conditional = 0
        self.cond_mispredicts = 0
        self.target_mispredicts = 0
        self.indirect = 0
        self.indirect_mispredicts = 0

    @property
    def mispredicts(self) -> int:
        return self.cond_mispredicts + self.target_mispredicts

    @property
    def misprediction_rate(self) -> float:
        """Mispredictions per control transfer (the Table 2 metric)."""
        return self.mispredicts / self.transfers if self.transfers else 0.0

    @property
    def conditional_rate(self) -> float:
        return (self.cond_mispredicts / self.conditional
                if self.conditional else 0.0)

    @property
    def indirect_rate(self) -> float:
        return (self.indirect_mispredicts / self.indirect
                if self.indirect else 0.0)


def extract_transfers(trace):
    """(pc, cat, taken, target) arrays of the trace's control transfers.

    Accepts a :class:`Trace` or an ``analysis.replay.TraceReplay`` (the
    replay caches the extraction so every consumer shares it).
    """
    transfers = getattr(trace, "transfers", None)
    if transfers is not None:
        return transfers()
    mask = trace.is_transfer
    return (
        trace.pc[mask],
        trace.cat[mask],
        trace.is_taken[mask],
        trace.target[mask],
    )


def run_predictor(
    predictor: DirectionPredictor,
    pcs, cats, takens, targets,
    btb_entries: int = 1024,
    use_ras: bool = True,
    kernel: str | None = None,
) -> BranchSimResult:
    """Drive one direction predictor + BTB (+RAS) over transfer events."""
    if active_kernel(kernel) == "vector":
        from .vector import BranchReplayContext, run_with_context
        ctx = BranchReplayContext(pcs, cats, takens, targets,
                                  btb_entries=btb_entries, use_ras=use_ras)
        return run_with_context(predictor, ctx)
    pcs, cats = _aslist(pcs), _aslist(cats)
    takens, targets = _aslist(takens), _aslist(targets)
    btb = BTB(btb_entries)
    ras: list[int] = []
    result = BranchSimResult()
    BRANCH, JUMP, CALL = int(NCat.BRANCH), int(NCat.JUMP), int(NCat.CALL)
    ICALL, IJUMP, RET = int(NCat.ICALL), int(NCat.IJUMP), int(NCat.RET)

    for pc, cat, taken, target in zip(pcs, cats, takens, targets):
        result.transfers += 1
        if cat == BRANCH:
            result.conditional += 1
            predicted = predictor.predict(pc)
            if predicted != taken:
                result.cond_mispredicts += 1
            elif taken:
                # Right direction; target must still come from the BTB.
                if btb.lookup(pc) != target:
                    result.target_mispredicts += 1
            predictor.update(pc, taken)
            if taken:
                btb.update(pc, target)
        elif cat in (JUMP, CALL):
            # Direct, always-taken: decode provides the target.
            if cat == CALL and use_ras:
                ras.append(pc + 4)
        elif cat == RET:
            result.indirect += 1
            predicted_target = ras.pop() if (use_ras and ras) else btb.lookup(pc)
            if predicted_target != target:
                result.target_mispredicts += 1
                result.indirect_mispredicts += 1
            btb.update(pc, target)
        else:  # IJUMP, ICALL
            result.indirect += 1
            if btb.lookup(pc) != target:
                result.target_mispredicts += 1
                result.indirect_mispredicts += 1
            btb.update(pc, target)
            if cat == ICALL and use_ras:
                ras.append(pc + 4)
                if len(ras) > 16:
                    del ras[0]
    return result


def compare_predictors(trace, names=("2bit", "bht", "gshare", "gap"),
                       kernel=None):
    """Misprediction results for several predictors over one trace.

    Under the vector kernel all predictors share one replay context
    (masks, BTB resolution, RAS replay are computed once).
    """
    if active_kernel(kernel) == "vector":
        from .vector import BranchReplayContext, run_with_context
        context = getattr(trace, "branch_context", None)
        ctx = (context() if context is not None
               else BranchReplayContext(*extract_transfers(trace)))
        return {
            name: run_with_context(PREDICTORS[name](), ctx)
            for name in names
        }
    events = extract_transfers(trace)
    return {
        name: run_predictor(PREDICTORS[name](), *events, kernel="scalar")
        for name in names
    }
