"""Indirect-branch target prediction beyond the plain BTB.

The paper's recommendation for interpreter-mode execution is "a
predictor well-tailored for indirect branches (such as [22], [26])" —
the two-level target caches of Chang/Hao/Patt and Driesen/Hölzle.  A
plain BTB stores one target per branch pc, which the dispatch switch
(one pc, ~80 live targets) defeats; a *target cache* indexes its table
with a hash of the pc and a path history of recent targets, letting it
learn bytecode sequences (loops re-execute the same opcode pattern, so
the previous handlers predict the next one).
"""

from __future__ import annotations


class TargetCache:
    """Two-level indirect-target predictor (path-history indexed)."""

    def __init__(self, entries: int = 1024, history_targets: int = 4,
                 bits_per_target: int = 3) -> None:
        self.entries = entries
        self.history_bits = history_targets * bits_per_target
        self.bits_per_target = bits_per_target
        self._mask = (1 << self.history_bits) - 1
        self._history = 0
        self._table: list[int | None] = [None] * entries

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) % self.entries

    def predict(self, pc: int) -> int | None:
        return self._table[self._index(pc)]

    def update(self, pc: int, target: int) -> None:
        self._table[self._index(pc)] = target
        # Fold target bits into the path history; mixing two shifts keeps
        # the hash discriminative for aligned targets (handlers are
        # block-aligned, so the lowest bits carry no information).
        bits = ((target >> 2) ^ (target >> 6) ^ (target >> 11))
        self._history = (
            (self._history << self.bits_per_target)
            ^ (bits & ((1 << self.bits_per_target) - 1))
        ) & self._mask


class HybridIndirectPredictor:
    """BTB for monomorphic sites, target cache for polymorphic ones.

    A small per-pc 2-bit chooser picks the component that has been
    right more often — the standard hybrid arrangement.
    """

    def __init__(self, entries: int = 1024) -> None:
        self.btb_targets: dict[int, int] = {}
        self.cache = TargetCache(entries)
        self._chooser: list[int] = [1] * 512

    def _choose(self, pc: int) -> int:
        return (pc >> 2) % len(self._chooser)

    def predict(self, pc: int) -> int | None:
        use_cache = self._chooser[self._choose(pc)] >= 2
        if use_cache:
            return self.cache.predict(pc)
        return self.btb_targets.get(pc)

    def update(self, pc: int, target: int) -> None:
        i = self._choose(pc)
        btb_right = self.btb_targets.get(pc) == target
        cache_right = self.cache.predict(pc) == target
        if cache_right and not btb_right:
            self._chooser[i] = min(3, self._chooser[i] + 1)
        elif btb_right and not cache_right:
            self._chooser[i] = max(0, self._chooser[i] - 1)
        self.btb_targets[pc] = target
        self.cache.update(pc, target)


INDIRECT_PREDICTORS = {
    "btb": None,                    # the baseline inside run_predictor
    "target-cache": TargetCache,
    "hybrid": HybridIndirectPredictor,
}


def run_indirect_predictor(predictor, pcs, cats, takens, targets) -> dict:
    """Measure an indirect predictor over a trace's indirect transfers.

    Returns counts over IJUMP/ICALL events (RET excluded: the return
    address stack already handles those).
    """
    from ...native.nisa import NCat
    from .predictors import _aslist

    IJUMP, ICALL = int(NCat.IJUMP), int(NCat.ICALL)
    total = 0
    correct = 0
    for pc, cat, _taken, target in zip(_aslist(pcs), _aslist(cats),
                                       _aslist(takens), _aslist(targets)):
        if cat != IJUMP and cat != ICALL:
            continue
        total += 1
        if predictor.predict(pc) == target:
            correct += 1
        predictor.update(pc, target)
    return {
        "events": total,
        "correct": correct,
        "accuracy": correct / total if total else 0.0,
    }
