"""Hierarchical span tracer and counter registry.

One process-wide :data:`TRACER` collects *span* events (named, timed,
nested via a thread-local stack) and *counters* into an in-memory
buffer that can be written out as a JSONL event stream, shipped across
process boundaries (workers ``drain()`` their buffer into their job
outcome; the parent ``absorb()``\\ s it at join), or aggregated into a
per-run manifest.

Design constraints:

- **Zero overhead when off.**  The disabled tracer is a no-op whose
  cost is one attribute check: hot call sites guard with
  ``if TRACER.enabled:`` and ``TRACER.span(...)`` returns a shared
  no-op context manager without allocating.
  :func:`measure_disabled_overhead` quantifies both paths so a bench
  guard can catch regressions.
- **Thread-safe.**  Span stacks are thread-local; buffer appends and
  counter bumps hold a lock.
- **Process-safe.**  Every process buffers its own events (ids are
  pid-prefixed); merging happens explicitly at join, never through a
  shared file.
"""

from __future__ import annotations

import functools
import itertools
import json
import os
import threading
import time


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    @property
    def attrs(self) -> dict:
        # A fresh throwaway dict: attribute writes on a disabled span
        # are discarded without polluting shared state.
        return {}


_NOOP = _NoopSpan()


class Span:
    """One open span; records itself into the tracer on exit."""

    __slots__ = ("name", "attrs", "id", "parent", "depth",
                 "_tracer", "_t0", "_wall")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self._tracer = tracer

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self, dur)
        return False


class Tracer:
    """Span/counter collector with per-process buffering."""

    def __init__(self) -> None:
        self.enabled = False
        self.events: list[dict] = []
        self.counters: dict[str, float] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- switches ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self.events = []
            self.counters = {}

    # -- span stack (thread-local) ------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        span.parent = stack[-1].id if stack else None
        span.depth = len(stack)
        span.id = f"{os.getpid()}-{next(self._ids)}"
        stack.append(span)

    def _pop(self, span: Span, dur: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - unbalanced exit; tolerate
            try:
                stack.remove(span)
            except ValueError:
                pass
        self._record(span.name, span._wall, dur, span.attrs,
                     span.id, span.parent, span.depth)

    # -- recording -----------------------------------------------------
    def _record(self, name, ts, dur, attrs, span_id, parent, depth) -> None:
        event = {
            "ev": "span",
            "name": name,
            "ts": round(ts, 6),
            "dur": dur,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "id": span_id,
            "parent": parent,
            "depth": depth,
        }
        if attrs:
            event["attrs"] = attrs
        with self._lock:
            self.events.append(event)

    def span(self, name: str, **attrs):
        """Context manager timing one nested span (no-op when disabled)."""
        if not self.enabled:
            return _NOOP
        return Span(self, name, attrs)

    def emit(self, name: str, dur: float, **attrs) -> None:
        """Record an already-measured span (aggregated hot-path phases)."""
        if not self.enabled:
            return
        stack = self._stack()
        parent = stack[-1].id if stack else None
        self._record(name, time.time() - dur, dur, attrs,
                     f"{os.getpid()}-{next(self._ids)}", parent, len(stack))

    def add(self, name: str, n: float = 1) -> None:
        """Bump a named counter (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    # -- cross-process merge ------------------------------------------
    def drain(self) -> dict:
        """Detach and return this process's buffered events/counters."""
        with self._lock:
            payload = {"events": self.events, "counters": self.counters}
            self.events = []
            self.counters = {}
        return payload

    def absorb(self, payload: dict) -> None:
        """Merge a drained payload (typically from a worker) into the
        buffer."""
        with self._lock:
            self.events.extend(payload.get("events", ()))
            for name, value in payload.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + value

    # -- output --------------------------------------------------------
    def dump(self, fh) -> int:
        """Write the buffer as JSONL (spans, then counters); returns the
        number of lines written."""
        with self._lock:
            events = list(self.events)
            counters = dict(self.counters)
        n = 0
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
            n += 1
        pid = os.getpid()
        for name in sorted(counters):
            fh.write(json.dumps(
                {"ev": "counter", "name": name,
                 "value": counters[name], "pid": pid},
                sort_keys=True) + "\n")
            n += 1
        return n

    def write(self, path: str) -> int:
        with open(path, "w") as fh:
            return self.dump(fh)


#: The process-wide tracer every instrumented module consults.
TRACER = Tracer()


def traced(name: str | None = None, **attrs):
    """Decorator wrapping a function call in a span (no-op when off)."""

    def deco(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not TRACER.enabled:
                return fn(*args, **kwargs)
            with TRACER.span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return deco


def measure_disabled_overhead(iters: int = 200_000) -> dict:
    """Per-call cost of the two disabled-tracer idioms, in nanoseconds.

    ``check_ns`` is the hot-site pattern (``if TRACER.enabled:``);
    ``span_ns`` the convenience pattern (``with TRACER.span(...)``).
    The bench guard asserts both stay no-op-cheap.
    """
    if TRACER.enabled:
        raise RuntimeError("tracer must be disabled to measure the off path")
    tracer = TRACER
    span = TRACER.span
    started = time.perf_counter()
    for _ in range(iters):
        if tracer.enabled:
            pass  # pragma: no cover - disabled by precondition
    check = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(iters):
        with span("overhead-probe"):
            pass
    spanned = time.perf_counter() - started
    return {
        "iters": iters,
        "check_ns": 1e9 * check / iters,
        "span_ns": 1e9 * spanned / iters,
    }
