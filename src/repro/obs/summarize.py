"""Aggregate and diff ``repro.obs`` JSONL event streams.

``summarize`` turns one run's spans into a profile table (count, total,
mean, min/max, share of wall time); ``diff`` compares the span totals
and counters of two runs and flags regressions — the
regression-detection primitive the one-off ``BENCH_*.json`` side
channels lacked.
"""

from __future__ import annotations

import json
import math

from ..analysis.report import format_table


def load(path: str) -> dict:
    """Read a JSONL event stream into ``{"spans": [...], "counters": {}}``."""
    spans: list[dict] = []
    counters: dict[str, float] = {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            kind = event.get("ev")
            if kind == "span":
                spans.append(event)
            elif kind == "counter":
                name = event["name"]
                counters[name] = counters.get(name, 0) + event["value"]
    return {"spans": spans, "counters": counters}


def aggregate(spans) -> dict:
    """Per-name ``{count, total, min, max}`` over span events."""
    agg: dict[str, dict] = {}
    for event in spans:
        entry = agg.setdefault(event["name"], {
            "count": 0, "total": 0.0, "min": math.inf, "max": 0.0,
        })
        dur = event["dur"]
        entry["count"] += 1
        entry["total"] += dur
        entry["min"] = min(entry["min"], dur)
        entry["max"] = max(entry["max"], dur)
    return agg


def wall_seconds(spans) -> float:
    """Wall-clock extent of the run (first span start to last span end)."""
    if not spans:
        return 0.0
    start = min(e["ts"] for e in spans)
    end = max(e["ts"] + e["dur"] for e in spans)
    return max(end - start, 0.0)


def profile_table(run: dict, top: int | None = None,
                  title: str = "") -> str:
    """Render one run's aggregated spans (and counters) as tables."""
    spans = run["spans"]
    agg = aggregate(spans)
    wall = wall_seconds(spans)
    rows = []
    for name, entry in sorted(agg.items(), key=lambda kv: -kv[1]["total"]):
        mean = entry["total"] / entry["count"]
        rows.append([
            name,
            entry["count"],
            round(entry["total"], 4),
            round(1000 * mean, 3),
            round(1000 * entry["min"], 3),
            round(1000 * entry["max"], 3),
            round(100 * entry["total"] / wall, 1) if wall else 0.0,
        ])
    if top:
        rows = rows[:top]
    out = format_table(
        ["span", "count", "total s", "mean ms", "min ms", "max ms",
         "% wall"],
        rows,
        title=title or f"{len(spans)} spans over {wall:.2f}s wall",
    )
    if run.get("counters"):
        counter_rows = [[name, run["counters"][name]]
                        for name in sorted(run["counters"])]
        out += "\n\n" + format_table(["counter", "value"], counter_rows)
    return out


def diff_runs(run_a: dict, run_b: dict,
              threshold: float = 0.2) -> tuple[str, list[str]]:
    """Compare span totals of ``run_b`` against ``run_a``.

    Returns the rendered diff tables plus a list of regression messages
    (span totals that grew by more than ``threshold``, relative).
    """
    agg_a = aggregate(run_a["spans"])
    agg_b = aggregate(run_b["spans"])
    rows = []
    regressions: list[str] = []
    for name in sorted(set(agg_a) | set(agg_b)):
        total_a = agg_a.get(name, {}).get("total", 0.0)
        total_b = agg_b.get(name, {}).get("total", 0.0)
        flag = ""
        if total_a and total_b:
            ratio = total_b / total_a
            if ratio > 1.0 + threshold:
                flag = "SLOWER"
                regressions.append(
                    f"{name}: {total_a:.4f}s -> {total_b:.4f}s "
                    f"({ratio:.2f}x)"
                )
            elif ratio < 1.0 - threshold:
                flag = "faster"
            ratio_text = round(ratio, 2)
        elif total_b:
            flag, ratio_text = "NEW", "inf"
        else:
            flag, ratio_text = "GONE", 0.0
        rows.append([name, round(total_a, 4), round(total_b, 4),
                     round(total_b - total_a, 4), ratio_text, flag])
    rows.sort(key=lambda r: -abs(r[3]))
    out = format_table(
        ["span", "a total s", "b total s", "delta s", "b/a", "flag"],
        rows, title="span totals, run b vs run a",
    )

    counters_a = run_a.get("counters", {})
    counters_b = run_b.get("counters", {})
    counter_rows = [
        [name, counters_a.get(name, 0), counters_b.get(name, 0),
         counters_b.get(name, 0) - counters_a.get(name, 0)]
        for name in sorted(set(counters_a) | set(counters_b))
        if counters_a.get(name, 0) != counters_b.get(name, 0)
    ]
    if counter_rows:
        out += "\n\n" + format_table(
            ["counter", "a", "b", "delta"], counter_rows,
            title="counters that changed",
        )
    return out, regressions
