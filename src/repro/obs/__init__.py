"""``repro.obs`` — run observability: span tracing, counters, manifests.

The paper's methodology is measurement; this package applies the same
discipline to the reproduction stack itself.  A process-wide
:data:`TRACER` records hierarchical spans and counters from the
instrumented layers (``vm.machine``/``vm.jit.compiler``,
``analysis.cache``, ``analysis.parallel``, the experiments CLI and the
bench harness) into a JSONL event stream, and every ``--json`` run
writes a manifest alongside its output.

Typical use::

    from repro import obs

    obs.TRACER.enable()
    with obs.span("my.phase", workload="db"):
        ...
    obs.write_events("run.jsonl")

Analysis::

    python -m repro.obs summarize run.jsonl
    python -m repro.obs diff run_a.jsonl run_b.jsonl
    python -m repro.obs overhead --max-span-ns 4000

Setting ``REPRO_OBS=<path>`` enables the tracer at import time; the
experiments/bench CLIs write the event stream to that path on exit.
The disabled tracer is a no-op whose cost is one attribute check
(guarded by a bench test; see ``docs/observability.md``).
"""

from __future__ import annotations

import os

from .tracer import (  # noqa: F401 - public re-exports
    Span,
    TRACER,
    Tracer,
    measure_disabled_overhead,
    traced,
)

#: Convenience alias: ``obs.span(...)`` == ``obs.TRACER.span(...)``.
span = TRACER.span
#: Convenience alias for counter bumps.
count = TRACER.add


def write_events(path: str) -> int:
    """Write the tracer's buffered events to ``path`` as JSONL."""
    return TRACER.write(path)


def build_manifest(tool: str, argv=None, experiments=None,
                   cache_stats=None, extra=None) -> dict:
    from . import manifest
    return manifest.build_manifest(tool, argv=argv, experiments=experiments,
                                   cache_stats=cache_stats, extra=extra)


def write_manifest(path: str, data: dict) -> str:
    from . import manifest
    return manifest.write_manifest(path, data)


def manifest_path_for(output_path: str) -> str:
    from . import manifest
    return manifest.manifest_path_for(output_path)


if os.environ.get("REPRO_OBS"):
    TRACER.enable()
