"""Per-run manifests: everything needed to interpret or reproduce a run.

A manifest is a small JSON document written next to a run's primary
output (``out.json`` -> ``out.manifest.json``) recording the code
identity (git revision, source digest), the toolchain (python/numpy
versions, platform), the effective configuration
(``REPRO_SIM_KERNEL``, ``REPRO_TRACE_CACHE``), the cache
hit/miss/corrupt totals, per-experiment wall times (including
failures), and — when the tracer is enabled — per-span totals covering
the VM phase splits (interp dispatch vs JIT translate/execute).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone

from .. import faults as _faults
from ..analysis import cache as _cache
from ..arch.kernels import DEFAULT_KERNEL, ENV_VAR as _KERNEL_ENV
from .tracer import TRACER

SCHEMA = 1


def git_rev() -> str | None:
    """The repository HEAD revision, or ``None`` outside a checkout."""
    root = os.path.dirname(os.path.dirname(_cache.package_root()))
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def config_snapshot() -> dict:
    """The effective run configuration, resolved like the runtime does."""
    return {
        "REPRO_SIM_KERNEL": os.environ.get(_KERNEL_ENV) or DEFAULT_KERNEL,
        "REPRO_TRACE_CACHE": _cache.default_cache_dir(),
        "REPRO_OBS": os.environ.get("REPRO_OBS") or None,
        "REPRO_FAULTS": os.environ.get(_faults.ENV_VAR) or None,
        "REPRO_CODE_ARCHIVE": os.environ.get("REPRO_CODE_ARCHIVE") or None,
        "REPRO_BENCH_ROUNDS": os.environ.get("REPRO_BENCH_ROUNDS") or None,
    }


def fault_report() -> dict:
    """The active fault plan (if any) plus the run's fault ledger.

    Always present in manifests — an all-zero ledger under
    ``"plan": null`` is the explicit record that the run was clean, and
    lock breaks or quarantines show up here even when no plan injected
    them."""
    plan = _faults.active()
    return {"plan": plan.plan.describe() if plan else None,
            **_faults.LEDGER.snapshot()}


def span_totals(events) -> dict:
    """Aggregate span events into ``{name: {count, seconds}}``."""
    totals: dict[str, dict] = {}
    for event in events:
        if event.get("ev") != "span":
            continue
        entry = totals.setdefault(event["name"], {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += event["dur"]
    for entry in totals.values():
        entry["seconds"] = round(entry["seconds"], 6)
    return totals


def build_manifest(tool: str, argv=None, experiments=None,
                   cache_stats: dict | None = None,
                   extra: dict | None = None) -> dict:
    """Assemble the manifest for one run of ``tool``.

    ``experiments`` is a list of ``{"id", "seconds", "error"}`` entries
    (``error=None`` for successes); ``cache_stats`` defaults to the
    process-wide :data:`~repro.analysis.cache.STATS` snapshot.
    """
    import numpy as np

    snap = dict(cache_stats if cache_stats is not None
                else _cache.STATS.snapshot())
    snap["hits"] = snap.get("trace_hits", 0) + snap.get("run_hits", 0)
    snap["misses"] = snap.get("trace_misses", 0) + snap.get("run_misses", 0)
    manifest = {
        "schema": SCHEMA,
        "tool": tool,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "argv": list(argv) if argv is not None else sys.argv[1:],
        "git_rev": git_rev(),
        "source_digest": _cache.source_digest(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "config": config_snapshot(),
        "cache": snap,
        "faults": fault_report(),
        "tracing": TRACER.enabled,
    }
    if experiments is not None:
        manifest["experiments"] = experiments
    if TRACER.enabled:
        manifest["spans"] = span_totals(TRACER.events)
        manifest["counters"] = dict(TRACER.counters)
    if extra:
        manifest["run"] = extra
    return manifest


def manifest_path_for(output_path: str) -> str:
    """``out.json`` -> ``out.manifest.json`` (suffix otherwise)."""
    base, ext = os.path.splitext(output_path)
    if ext == ".json":
        return base + ".manifest.json"
    return output_path + ".manifest.json"


def write_manifest(path: str, manifest: dict) -> str:
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
