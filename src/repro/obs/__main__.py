"""``python -m repro.obs`` — summarize/diff traced runs, overhead probe.

Examples::

    python -m repro.obs summarize run.jsonl --top 20
    python -m repro.obs diff baseline.jsonl current.jsonl --fail-on-regress
    python -m repro.obs overhead --max-span-ns 4000
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Analyze repro.obs JSONL event streams.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_sum = sub.add_parser(
        "summarize", help="aggregate one run's spans into a profile table")
    p_sum.add_argument("run", help="JSONL event stream")
    p_sum.add_argument("--top", type=int, default=None, metavar="N",
                       help="only the N largest spans by total time")

    p_diff = sub.add_parser(
        "diff", help="compare the span totals/counters of two runs")
    p_diff.add_argument("run_a", help="baseline JSONL event stream")
    p_diff.add_argument("run_b", help="candidate JSONL event stream")
    p_diff.add_argument("--threshold", type=float, default=0.2,
                        help="relative growth flagged as a regression "
                             "(default 0.2)")
    p_diff.add_argument("--fail-on-regress", action="store_true",
                        help="exit nonzero when any span regresses")

    p_ovh = sub.add_parser(
        "overhead", help="measure the disabled tracer's per-call cost")
    p_ovh.add_argument("--iters", type=int, default=200_000)
    p_ovh.add_argument("--max-span-ns", type=float, default=None,
                       metavar="NS",
                       help="fail if a disabled span() call costs more")

    args = parser.parse_args(argv)

    if args.cmd == "summarize":
        from . import summarize
        print(summarize.profile_table(summarize.load(args.run),
                                      top=args.top))
        return 0

    if args.cmd == "diff":
        from . import summarize
        table, regressions = summarize.diff_runs(
            summarize.load(args.run_a), summarize.load(args.run_b),
            threshold=args.threshold,
        )
        print(table)
        for message in regressions:
            print(f"REGRESSION: {message}", file=sys.stderr)
        return 1 if (regressions and args.fail_on_regress) else 0

    # overhead
    from .tracer import TRACER, measure_disabled_overhead
    was_enabled = TRACER.enabled
    TRACER.disable()
    try:
        measured = measure_disabled_overhead(args.iters)
    finally:
        if was_enabled:  # pragma: no cover - probe is run tracer-off
            TRACER.enable()
    print(f"disabled guard check: {measured['check_ns']:7.1f} ns/op")
    print(f"disabled span() call: {measured['span_ns']:7.1f} ns/op")
    if args.max_span_ns is not None \
            and measured["span_ns"] > args.max_span_ns:
        print(f"FAIL: disabled span() costs {measured['span_ns']:.0f}ns, "
              f"over the {args.max_span_ns:.0f}ns guard", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
