"""Per-method run-time profiling.

Collects, per method: invocation count ``n_i``, cycles spent
interpreting (``I``-bucket), cycles executing compiled code
(``E``-bucket) and translate cost ``T_i`` — the quantities the paper's
oracle ("opt") model is built from (Section 3):

    ``N_i = T_i / (I_i - E_i)`` — compile iff ``n_i > N_i``.

The tiered engine extends each profile with loop-backedge counts and
tier-transition counters (current tier, promotions, OSR entries,
deopts) so profiler snapshots double as the tiering audit trail.

The hot-loop contract: the ``MethodProfile`` is cached on the frame at
push time (``frame.profile``), so the interpreter charges cycles with
one attribute access instead of a per-bytecode dict lookup.
"""

from __future__ import annotations

from .threads import EMIT_INTERP


class MethodProfile:
    """Profile counters for one method."""

    __slots__ = (
        "qualified_name",
        "invocations",
        "interp_cycles",
        "compiled_cycles",
        "translate_cycles",
        "install_cycles",
        "was_compiled",
        "is_native",
        "backedges",
        "tier",
        "promotions",
        "osr_entries",
        "deopts",
    )

    def __init__(self, qualified_name: str, is_native: bool = False) -> None:
        self.qualified_name = qualified_name
        self.invocations = 0
        self.interp_cycles = 0
        self.compiled_cycles = 0
        self.translate_cycles = 0
        # install-path subset of translate_cycles (code-archive hits)
        self.install_cycles = 0
        self.was_compiled = False
        self.is_native = is_native
        self.backedges = 0
        self.tier = 0
        self.promotions = 0
        self.osr_entries = 0
        self.deopts = 0

    @property
    def interp_per_invocation(self) -> float:
        """Mean interpret cost per invocation (``I_i``)."""
        return self.interp_cycles / self.invocations if self.invocations else 0.0

    @property
    def exec_per_invocation(self) -> float:
        """Mean compiled-execution cost per invocation (``E_i``)."""
        return self.compiled_cycles / self.invocations if self.invocations else 0.0

    def snapshot(self) -> dict:
        snap = {
            "name": self.qualified_name,
            "invocations": self.invocations,
            "interp_cycles": self.interp_cycles,
            "compiled_cycles": self.compiled_cycles,
            "translate_cycles": self.translate_cycles,
            "was_compiled": self.was_compiled,
        }
        if self.install_cycles:
            snap["install_cycles"] = self.install_cycles
        if self.backedges:
            snap["backedges"] = self.backedges
        if self.promotions or self.deopts:
            snap["tier"] = self.tier
            snap["promotions"] = self.promotions
            snap["osr_entries"] = self.osr_entries
            snap["deopts"] = self.deopts
        return snap

    def __repr__(self) -> str:
        return (
            f"MethodProfile({self.qualified_name}, n={self.invocations}, "
            f"I={self.interp_cycles}, E={self.compiled_cycles}, "
            f"T={self.translate_cycles})"
        )


class Profiler:
    """Aggregates :class:`MethodProfile` objects for one VM run."""

    def __init__(self) -> None:
        self.profiles: dict[str, MethodProfile] = {}

    def profile_for(self, method) -> MethodProfile:
        key = method.qualified_name
        p = self.profiles.get(key)
        if p is None:
            p = MethodProfile(key, method.is_native)
            self.profiles[key] = p
        return p

    def count_invocation(self, method) -> int:
        p = self.profile_for(method)
        p.invocations += 1
        return p.invocations

    def charge(self, frame, cycles: int) -> None:
        """Attribute cycles from one executed bytecode to its method.

        The stepper inlines this logic against ``frame.profile``; this
        method remains for callers outside the hot loop and falls back
        to the dict lookup when the frame carries no cached profile.
        """
        if cycles <= 0:
            return
        p = frame.profile
        if p is None:
            p = self.profile_for(frame.method)
        if frame.emit_mode == EMIT_INTERP:
            p.interp_cycles += cycles
        else:
            p.compiled_cycles += cycles

    def note_translate(self, method, cycles: int,
                       installed: bool = False) -> None:
        """Charge translate-portion cycles; ``installed`` marks the
        cheap archive-install path (still translate cycles for the
        Figure 1 split, but tracked as the install subset too)."""
        p = self.profile_for(method)
        p.translate_cycles += cycles
        if installed:
            p.install_cycles += cycles
        p.was_compiled = True

    def snapshot(self) -> dict[str, dict]:
        return {k: p.snapshot() for k, p in self.profiles.items()}
