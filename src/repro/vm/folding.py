"""Bytecode folding for the interpreter (the Section 4.4 proposal).

The paper observes that wide-issue scaling of the interpreter is capped
by the dispatch switch's unpredictable target, and suggests the remedy
picoJava applies in hardware: *fold* commonly occurring sequences of
simple bytecodes so that a group shares a single fetch/decode/dispatch.
``An interpreter code that identifies these sequences of bytecodes can
mitigate the effect of inaccurate target prediction and scale better.''

This module implements that interpreter variant at the trace level: a
:class:`FoldingSink` holds each simple handler emission for one step;
when the next bytecode is also simple (and nothing else — allocation,
call, lock, translate work — intervened), the pair is merged by
dropping the first handler's back-jump and the second handler's
dispatch block.  Groups fold up to ``max_group`` bytecodes, one
dispatch per group, exactly like picoJava's 2-4-byte folding groups.

Semantics are untouched; only the emitted native stream (and therefore
cycles, branch events and fetch behaviour) changes.
"""

from __future__ import annotations

from ..isa.opcodes import Op, OPINFO
from .interp_templates import _DISPATCH_LEN, InterpreterTemplates

#: Opcode kinds that may participate in a folding group (no control
#: transfer, no runtime call in the handler).
_FOLDABLE_KINDS = frozenset({
    "const", "load_local", "store_local", "iinc", "stack", "binop",
    "unop", "field", "array", "typecheck", "misc",
})


class _Variants:
    """The four slicings of one handler template."""

    __slots__ = ("full", "nojump", "body", "body_nojump")

    def __init__(self, template) -> None:
        n = template.n
        self.full = template
        self.nojump = template.slice_rows(0, n - 1)
        self.body = template.slice_rows(_DISPATCH_LEN, n)
        self.body_nojump = template.slice_rows(_DISPATCH_LEN, n - 1)


def build_fold_map(templates: InterpreterTemplates) -> dict[int, _Variants]:
    """id(template) -> variants, for every foldable handler."""
    fold_map: dict[int, _Variants] = {}
    for key, template in templates.tpl.items():
        if not isinstance(key, Op):
            continue
        if OPINFO[key].kind not in _FOLDABLE_KINDS:
            continue
        fold_map[id(template)] = _Variants(template)
    return fold_map


class FoldingSink:
    """Sink wrapper that merges consecutive simple handler emissions.

    Unknown templates (compiled chunks, runtime stubs, lock routines,
    the translator) flush any held emission and pass through unchanged,
    so folding groups never straddle non-interpreter work.
    """

    def __init__(self, inner, templates: InterpreterTemplates,
                 max_group: int = 3) -> None:
        self._inner = inner
        self._fold_map = build_fold_map(templates)
        self._max_group = max_group
        self._held = None        # (variants, eas, takens, targets, stripped)
        self._group = 0
        self.folded_bytecodes = 0
        self.dispatches_saved = 0

    # -- sink protocol ------------------------------------------------
    def emit(self, template, eas=(), takens=(), targets=()) -> None:
        variants = self._fold_map.get(id(template))
        if variants is None:
            self.flush()
            self._inner.emit(template, eas, takens, targets)
            return
        if self._held is not None and self._group < self._max_group:
            # Fold: the held handler loses its back-jump; the incoming
            # handler will lose its dispatch block.
            hv, h_eas, h_tak, h_tgt, h_stripped = self._held
            tpl = hv.body_nojump if h_stripped else hv.nojump
            self._inner.emit(tpl, h_eas, h_tak, h_tgt)
            self._held = (variants, tuple(eas)[1:], takens, targets, True)
            self._group += 1
            self.folded_bytecodes += 1
            self.dispatches_saved += 1
            return
        self.flush()
        self._held = (variants, tuple(eas), takens, targets, False)
        self._group = 1

    def flush(self) -> None:
        """Emit any held handler in its final form."""
        if self._held is None:
            return
        hv, eas, takens, targets, stripped = self._held
        self._held = None
        self._group = 0
        self._inner.emit(hv.body if stripped else hv.full,
                         eas, takens, targets)

    def emit_cycles(self, cycles: int) -> None:
        self._inner.emit_cycles(cycles)

    # -- delegation ------------------------------------------------------
    @property
    def records(self) -> bool:
        return self._inner.records

    def trace(self):
        self.flush()
        return self._inner.trace()

    def __getattr__(self, name):
        return getattr(self._inner, name)
