"""Class loading, layout and lazy constant-pool resolution.

Loading a class (lazily, on first reference — as the JVM spec requires)
assigns all its simulated addresses: the metadata block in the VM data
segment, static-field slots, and the method bytecode images in the
bytecode area.  The work is charged to the trace through the loader-loop
stub templates (flag ``FLAG_CLASSLOAD``), producing the class-loading
miss spikes at program start that the paper's Figure 6 shows.

Simplification: there is no ``<clinit>``; workloads initialize their
static state from ``main`` (documented in DESIGN.md).
"""

from __future__ import annotations

from ..isa.method import JClass, Method, Program
from ..isa.pool import ClassRef, FieldRef, MethodRef
from ..native.layout import (
    BYTECODE_BASE,
    BYTECODE_SIZE,
    CLASSFILE_BASE,
    STATICS_BASE,
    STATICS_SIZE,
    VM_DATA_BASE,
    VM_DATA_SIZE,
)
from .stubs import RuntimeStubs

#: VM-data bytes reserved before class metadata (jump table, allocator state).
_METADATA_START = 0x2000

#: Fixed metadata bytes per class (class struct, vtable header).
CLASS_STRUCT_BYTES = 64
#: Metadata bytes per method block.
METHOD_BLOCK_BYTES = 32
#: Metadata bytes per constant-pool entry.
POOL_ENTRY_BYTES = 8


class ClassLoadError(Exception):
    """Raised for unknown classes or loader address-space exhaustion."""


class ClassLoader:
    """Loads classes out of a :class:`Program` into a running VM."""

    def __init__(self, program: Program, stubs: RuntimeStubs, sink) -> None:
        self.program = program
        self.stubs = stubs
        self.sink = sink
        self._meta_cursor = VM_DATA_BASE + _METADATA_START
        self._static_cursor = STATICS_BASE
        self._bytecode_cursor = BYTECODE_BASE
        self._classfile_cursor = CLASSFILE_BASE
        self._next_class_id = 0
        self._next_method_id = 0
        self.classes_loaded = 0
        self.metadata_bytes = 0
        self.bytecode_bytes = 0
        self.resolution_count = 0
        self.overhead_cycles = 0   # loader/resolver cycles charged to trace
        self.methods_by_id: list[Method] = []
        #: Optional callback invoked after each class finishes loading
        #: (the tiered controller hooks this to invalidate loaded-world
        #: CHA speculation before the new class can be dispatched on).
        self.on_load = None

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def ensure_loaded(self, name: str) -> JClass:
        """Load (and link) a class and its superclasses if needed."""
        try:
            cls = self.program.get_class(name)
        except KeyError as exc:
            raise ClassLoadError(str(exc)) from None
        if cls.loaded:
            return cls
        # Mark early to tolerate (ignore) self-referential pools.
        cls.loaded = True
        if cls.super_name:
            cls.super_class = self.ensure_loaded(cls.super_name)
        self._layout(cls)
        before = self.sink.cycles
        self._emit_load_trace(cls)
        self.overhead_cycles += self.sink.cycles - before
        self.classes_loaded += 1
        if self.on_load is not None:
            self.on_load(cls)
        return cls

    def _alloc_meta(self, nbytes: int) -> int:
        addr = self._meta_cursor
        self._meta_cursor += nbytes
        if self._meta_cursor > VM_DATA_BASE + VM_DATA_SIZE:
            raise ClassLoadError("VM metadata region exhausted")
        self.metadata_bytes += nbytes
        return addr

    def _layout(self, cls: JClass) -> None:
        """Assign addresses and compute the field layout."""
        cls.class_id = self._next_class_id
        self._next_class_id += 1

        # Field layout: superclass fields first, then own, naturally aligned.
        offsets: dict[str, int] = {}
        types: dict[str, str] = {}
        size = 0
        if cls.super_class is not None:
            offsets.update(cls.super_class.field_offsets)
            types.update(cls.super_class.field_types)
            size = cls.super_class.instance_bytes
        for field in cls.fields:
            if field.is_static:
                continue
            width = field.byte_size
            size = (size + width - 1) & ~(width - 1)
            offsets[field.name] = size
            types[field.name] = field.ftype
            size += width
        cls.field_offsets = offsets
        cls.field_types = types
        cls.instance_bytes = (size + 3) & ~3

        # Static fields.
        for field in cls.fields:
            if not field.is_static:
                continue
            if self._static_cursor + 4 > STATICS_BASE + STATICS_SIZE:
                raise ClassLoadError("statics region exhausted")
            cls.static_addr[field.name] = self._static_cursor
            cls.statics[field.name] = 0.0 if field.ftype == "float" else (
                None if field.ftype == "ref" else 0
            )
            self._static_cursor += 4

        # Metadata block: class struct + method blocks + pool entries.
        n_methods = len(cls.methods)
        meta_size = (
            CLASS_STRUCT_BYTES
            + METHOD_BLOCK_BYTES * n_methods
            + POOL_ENTRY_BYTES * len(cls.pool)
        )
        cls.meta_addr = self._alloc_meta(meta_size)
        cls.pool_addr = cls.meta_addr + CLASS_STRUCT_BYTES + METHOD_BLOCK_BYTES * n_methods
        cls.lock = None
        cls.lockword_addr = cls.meta_addr + 4
        cls.gc_mark = False

        # Method blocks and bytecode images.
        for index, method in enumerate(cls.methods.values()):
            method.method_id = self._next_method_id
            self._next_method_id += 1
            self.methods_by_id.append(method)
            method.meta_addr = cls.meta_addr + CLASS_STRUCT_BYTES + METHOD_BLOCK_BYTES * index
            if not method.is_native:
                if not method.bc_offsets:
                    method.compute_layout()
                method.bc_addr = self._bytecode_cursor
                self._bytecode_cursor += (method.bc_length + 3) & ~3
                if self._bytecode_cursor > BYTECODE_BASE + BYTECODE_SIZE:
                    raise ClassLoadError("bytecode region exhausted")
                self.bytecode_bytes += method.bc_length

        # The class-file image this was "read" from.
        cls.classfile_addr = self._classfile_cursor
        cls.classfile_bytes = meta_size + sum(
            m.bc_length for m in cls.methods.values() if not m.is_native
        ) + 40
        self._classfile_cursor += (cls.classfile_bytes + 7) & ~7

    def _emit_load_trace(self, cls: JClass) -> None:
        """Charge the parse / copy / fixup work to the native trace."""
        stubs, sink = self.stubs, self.sink
        # Parse loop: one iteration per 4 image bytes.
        iters = max(1, cls.classfile_bytes // 4)
        src, dst = cls.classfile_addr, cls.meta_addr
        meta_words = max(1, (cls.pool_addr + POOL_ENTRY_BYTES * len(cls.pool)
                             - cls.meta_addr) // 8)
        for i in range(iters):
            sink.emit(
                stubs.classload_parse,
                (src + 8 * i, dst + 8 * (i % meta_words)),
                (i + 1 < iters,),
            )
        # Bytecode copy loops.
        for method in cls.methods.values():
            if method.is_native:
                continue
            n = max(1, method.bc_length // 4)
            for i in range(n):
                sink.emit(
                    stubs.classload_bccopy,
                    (cls.classfile_addr + 40 + 4 * i, method.bc_addr + 4 * i),
                    (i + 1 < n,),
                )
        # Fixed per-class fixup.
        sink.emit(
            stubs.classload_fixup,
            (cls.meta_addr, cls.meta_addr + 8, cls.meta_addr + 12),
            (),
            (stubs.classload_fixup.base_pc, 0),
        )

    # ------------------------------------------------------------------
    # lazy resolution
    # ------------------------------------------------------------------
    def pool_ea(self, cls: JClass, index: int) -> int:
        """Simulated address of a constant-pool entry."""
        return cls.pool_addr + POOL_ENTRY_BYTES * index

    def resolve_class(self, cls: JClass, index: int) -> JClass:
        entry = cls.pool[index]
        if entry.resolved is None:
            assert isinstance(entry, ClassRef)
            target = self.ensure_loaded(entry.class_name)
            entry.resolved = target
            self.resolution_count += 1
            self.stubs.emit_resolve(
                self.sink, self.pool_ea(cls, index), target.meta_addr
            )
            self.overhead_cycles += self.stubs.resolve.cycles
        return entry.resolved

    def resolve_field(self, cls: JClass, index: int):
        """Resolve a field ref to ``(owner_class, field_name)``."""
        entry = cls.pool[index]
        if entry.resolved is None:
            assert isinstance(entry, FieldRef)
            owner = self.ensure_loaded(entry.class_name)
            # Walk up for the declaring class of a static field.
            declarer = owner
            while (declarer is not None
                   and entry.field_name not in declarer.static_addr
                   and entry.field_name not in declarer.field_offsets):
                declarer = declarer.super_class
            if declarer is None:
                raise ClassLoadError(
                    f"field {entry.class_name}.{entry.field_name} not found"
                )
            entry.resolved = (declarer, entry.field_name)
            self.resolution_count += 1
            self.stubs.emit_resolve(
                self.sink, self.pool_ea(cls, index), declarer.meta_addr
            )
            self.overhead_cycles += self.stubs.resolve.cycles
        return entry.resolved

    def resolve_method(self, cls: JClass, index: int) -> Method:
        """Resolve a method ref to its statically-known target."""
        entry = cls.pool[index]
        if entry.resolved is None:
            assert isinstance(entry, MethodRef)
            owner = self.ensure_loaded(entry.class_name)
            method = owner.find_method(entry.method_name)
            if method is None:
                raise ClassLoadError(
                    f"method {entry.class_name}.{entry.method_name} not found"
                )
            entry.resolved = method
            self.resolution_count += 1
            self.stubs.emit_resolve(
                self.sink, self.pool_ea(cls, index), owner.meta_addr
            )
            self.overhead_cycles += self.stubs.resolve.cycles
        return entry.resolved
