"""Persistent cross-process shared JIT code archive (ShareJIT-style).

The paper's Figure 1 shows the translate portion dominating start-up
cycles and write misses; re-translating every method in every VM
instance (and every pool worker) repeats exactly that work.  Following
ShareJIT (PAPERS.md, arXiv 1810.09555), this module persists compiled
:class:`~repro.vm.jit.chunks.CompiledMethod` bodies in a
content-addressed on-disk archive so later VMs *install* them — a
streaming copy into the code cache priced at
:meth:`~repro.vm.jit.translate_stubs.TranslateStubs.emit_install` —
instead of re-running the translator.

Sharing compiled code across VMs is only sound if everything the
compiler baked into the chunks is part of the address.  The entry key
therefore covers

- the source digest of every trace-affecting module (via
  :func:`repro.analysis.cache.cache_key` — editing the VM invalidates
  the whole archive),
- the method's identity and bytecode (opcode/operand stream),
- the compiler configuration (tier, effective optimize flag, inlining,
  CHA speculation mode and blacklist), and
- the *link context*: resolved static-field addresses that get baked
  into chunk effective addresses, plus the inlining decision (target,
  field offsets, speculative or proven) at every call site.

Computing that signature performs the same pool resolutions, in the
same order, that translation itself would — on hits *and* misses —
so archive-enabled runs resolve and load classes identically whether
they translate or install, and cold/warm runs produce byte-identical
execution traces.

Storage reuses the trace-cache machinery in
:mod:`repro.analysis.cache`: pid-file locks, atomic writes, sha256
digest sidecars verified on load, and quarantine-and-recompile on
corruption — a corrupt archive entry is never executed.  Eviction is
size-capped LRU over entry mtimes (hits touch their entry), bounded by
``REPRO_CODE_ARCHIVE_LIMIT`` bytes.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time

import numpy as np

from .. import faults
from ..analysis import cache
from ..isa.opcodes import Op, OPINFO
from ..native.template import Template
from ..obs import TRACER
from .jit.chunks import Chunk, CompiledMethod, InlineSite
from .jit.inline import inline_field_offsets, is_inlinable

#: Payload schema version; bump on layout changes (defense in depth —
#: the source digest in the key already invalidates on code edits).
SCHEMA = 1

ENV_VAR = "REPRO_CODE_ARCHIVE"
LIMIT_ENV_VAR = "REPRO_CODE_ARCHIVE_LIMIT"
DEFAULT_LIMIT_BYTES = 64 * 1024 * 1024

#: Run the (cheap) eviction scan every this many stores.
_GC_EVERY = 16

#: Template array fields serialized verbatim (numpy arrays).
_ARRAY_FIELDS = ("pc", "cat", "ea", "flags", "target", "dst", "src1",
                 "src2", "patch_ea", "patch_taken", "patch_target")


def default_archive_dir() -> str | None:
    """Archive directory from the environment; unset/empty disables."""
    return os.environ.get(ENV_VAR, "") or None


def resolve_archive_dir(arg: str | None) -> str | None:
    """``None`` means "use the environment default"; an empty string (or
    any falsy value) disables the archive — same contract as
    :func:`repro.analysis.cache.resolve_dir`."""
    if arg is None:
        return default_archive_dir()
    return arg or None


def archive_limit_bytes() -> int:
    try:
        return int(os.environ.get(LIMIT_ENV_VAR, "") or DEFAULT_LIMIT_BYTES)
    except ValueError:  # pragma: no cover - bad env value
        return DEFAULT_LIMIT_BYTES


class _Unshareable(Exception):
    """The method's link context cannot be reproduced here; treat the
    archive entry as absent (never as an error)."""


# -- link-context signature --------------------------------------------

def _bytecode_signature(method) -> list:
    return [(int(i.op), i.a, i.b, repr(i.extra)) for i in method.code]


def _inline_signature(compiler, method, idx, instr, speculate_cha,
                      cha_blacklist) -> tuple:
    """Mirror :meth:`JITCompiler._try_inline`'s decision (and its
    resolution side effects) without generating code."""
    ref = method.pool[instr.a]
    base = ("call", ref.class_name, ref.method_name, ref.argc)
    if not compiler.inline_enabled:
        return base
    speculative = False
    if instr.op is Op.INVOKEVIRTUAL:
        target = compiler.hierarchy.unique_target(
            ref.class_name, ref.method_name)
        if (target is None and speculate_cha
                and (ref.class_name, ref.method_name) not in cha_blacklist):
            target = compiler.hierarchy.unique_loaded_target(
                ref.class_name, ref.method_name)
            speculative = target is not None
    else:
        try:
            target = compiler.loader.resolve_method(method.jclass, instr.a)
        except Exception:
            return base
    if target is None or not is_inlinable(target):
        return base
    offsets = inline_field_offsets(target, compiler.loader)
    if offsets is None:
        return base
    has_receiver = instr.op is not Op.INVOKESTATIC
    if not has_receiver and offsets:
        return base
    return ("inline", target.qualified_name, tuple(offsets), speculative)


def link_signature(compiler, method, *, optimize: bool,
                   speculate_cha: bool, cha_blacklist: frozenset) -> str:
    """Digest of everything translation would bake into the chunks.

    Walks the bytecode exactly like ``JITCompiler._translate`` — same
    reachability skips, same pool resolutions in the same order — so
    computing the key is observationally identical (loader charges,
    class loading) to starting a translation.  That property is what
    keeps cold and warm runs cycle-identical outside the
    translate/install split.
    """
    parts: list = [
        SCHEMA, method.qualified_name, method.argc, method.max_locals,
        int(method.is_static), int(method.is_synchronized),
        bool(optimize), bool(compiler.inline_enabled),
        bool(speculate_cha), sorted(cha_blacklist),
        _bytecode_signature(method),
    ]
    for idx, instr in enumerate(method.code):
        if method.depth_in[idx] < 0:    # unreachable: _translate skips too
            continue
        kind = OPINFO[instr.op].kind
        if kind == "field" and instr.op in (Op.GETSTATIC, Op.PUTSTATIC):
            owner, fname = compiler.loader.resolve_field(
                method.jclass, instr.a)
            parts.append(
                ("static", idx, owner.name, fname, owner.static_addr[fname]))
        elif kind == "invoke":
            parts.append((idx,) + _inline_signature(
                compiler, method, idx, instr, speculate_cha, cha_blacklist))
    return hashlib.sha256(repr(parts).encode()).hexdigest()


# -- CompiledMethod (de)serialization ----------------------------------

def _template_payload(template: Template) -> dict:
    d = {f: getattr(template, f) for f in _ARRAY_FIELDS}
    d["name"] = template.name
    return d


def _chunk_payload(chunk: Chunk | None) -> dict | None:
    if chunk is None:
        return None
    d = _template_payload(chunk.template)
    d["ea_plan"] = chunk.ea_plan
    return d


def serialize_compiled(compiled: CompiledMethod) -> dict:
    """Position-annotated payload for one compiled method.  Methods are
    referenced by qualified name (resolved against the installing VM's
    program), never pickled."""
    return {
        "schema": SCHEMA,
        "name": compiled.method.qualified_name,
        "entry_pc": compiled.entry_pc,
        "end_pc": compiled.end_pc,
        "prologue": _chunk_payload(compiled.prologue),
        "chunks": [_chunk_payload(c) for c in compiled.chunks],
        "inline_info": [
            (idx, site.target.qualified_name, site.field_offsets)
            for idx, site in compiled.inline_info.items()
        ],
        "assumptions": [
            (cname, mname, target.qualified_name)
            for cname, mname, target in compiled.assumptions
        ],
    }


def _find_method(program, qualified_name: str):
    cname, _, mname = qualified_name.rpartition(".")
    jclass = program.classes.get(cname)
    method = jclass.find_method(mname) if jclass is not None else None
    if method is None:
        raise _Unshareable(qualified_name)
    return method


def _rebased_chunk(payload: dict, old_entry: int, old_end: int,
                   delta: int) -> Chunk:
    arrays = {f: np.array(payload[f]) for f in _ARRAY_FIELDS}
    arrays["pc"] = arrays["pc"] + delta
    # Method-internal addresses — chunk pcs in branch targets, embedded
    # switch tables in effective addresses — move with the body.  Baked
    # static-field addresses live in the (disjoint) VM data region and
    # the 0 placeholders of patch slots and bounds-check targets sit
    # below it, so the window test leaves both alone.
    for field in ("ea", "target"):
        arr = arrays[field]
        window = (arr >= old_entry) & (arr < old_end)
        if window.any():
            arr[window] += delta
    template = Template(name=payload["name"], **arrays)
    return Chunk(template, payload.get("ea_plan"))


def materialize_compiled(payload: dict, method, program,
                         code_cache) -> CompiledMethod:
    """Rebuild a :class:`CompiledMethod` at a freshly allocated position
    in this VM's code cache.  Raises :class:`_Unshareable` when a
    referenced method does not exist in this program."""
    old_entry = payload["entry_pc"]
    old_end = payload["end_pc"]
    n_words = (old_end - old_entry) // 4
    new_entry = code_cache.region.alloc(n_words)
    delta = new_entry - old_entry

    inline_info = {}
    for idx, target_qn, offsets in payload["inline_info"]:
        inline_info[idx] = InlineSite(_find_method(program, target_qn),
                                      offsets)
    assumptions = tuple(
        (cname, mname, _find_method(program, target_qn))
        for cname, mname, target_qn in payload["assumptions"]
    )
    prologue = _rebased_chunk(payload["prologue"], old_entry, old_end, delta)
    chunks = [
        None if c is None else _rebased_chunk(c, old_entry, old_end, delta)
        for c in payload["chunks"]
    ]
    compiled = CompiledMethod(method, chunks, prologue, new_entry,
                              old_end + delta, inline_info)
    compiled.assumptions = assumptions
    return compiled


# -- the archive -------------------------------------------------------

class _EntryRef:
    """Resolved address of one archive entry: key plus on-disk path."""

    __slots__ = ("key", "path")

    def __init__(self, key: str, path: str) -> None:
        self.key = key
        self.path = path


class CodeArchive:
    """One VM's handle on a shared on-disk compiled-code archive."""

    def __init__(self, directory: str,
                 limit_bytes: int | None = None) -> None:
        self.directory = directory
        self.limit_bytes = (archive_limit_bytes() if limit_bytes is None
                            else limit_bytes)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._stores_since_gc = 0

    # -- addressing ----------------------------------------------------
    def entry_for(self, compiler, method, *, tier: int,
                  optimize: bool | None = None,
                  speculate_cha: bool = False,
                  cha_blacklist: frozenset = frozenset()) -> _EntryRef:
        effective_opt = (compiler.optimize_enabled if optimize is None
                         else optimize)
        sig = link_signature(
            compiler, method, optimize=effective_opt,
            speculate_cha=speculate_cha, cha_blacklist=cha_blacklist)
        key = cache.cache_key("code", signature=sig, tier=tier)
        safe = method.qualified_name.replace("/", "_").replace(":", "_")
        path = os.path.join(self.directory, "code",
                            f"{safe}-t{tier}-{key[:16]}.pkl")
        return _EntryRef(key, path)

    def probe(self, compiler, method, *, tier: int,
              optimize: bool | None = None) -> bool:
        """Existence check (no counters) for promotion pricing."""
        entry = self.entry_for(compiler, method, tier=tier,
                               optimize=optimize)
        return os.path.exists(entry.path)

    # -- load ----------------------------------------------------------
    def load(self, entry: _EntryRef, method, compiler) -> CompiledMethod | None:
        """The archived compiled method, installed into this VM's code
        cache; ``None`` on miss, corruption (quarantined), or an
        unreproducible link context."""
        if faults.ACTIVE is not None:
            faults.ACTIVE.on_io("load")
        started = time.perf_counter()
        outcome = "hit"
        compiled = None
        try:
            payload = pickle.loads(cache._read_verified(entry.path))
            if payload.get("schema") != SCHEMA:
                raise cache.CorruptEntry(os.path.basename(entry.path))
            compiled = materialize_compiled(
                payload, method, compiler.hierarchy.program,
                compiler.code_cache)
        except FileNotFoundError:
            outcome = "miss"
        except _Unshareable:
            outcome = "miss"
        except cache._CORRUPT_ERRORS:
            outcome = "corrupt"
            cache.STATS.count("corrupt")
            cache._quarantine(entry.path)
        if compiled is None:
            self.misses += 1
            cache.STATS.count("code_misses")
        else:
            self.hits += 1
            cache.STATS.count("code_hits")
            try:
                os.utime(entry.path)    # LRU recency for eviction
            except OSError:  # pragma: no cover - raced with eviction
                pass
        elapsed = time.perf_counter() - started
        cache.STATS.time("lookup_seconds", elapsed)
        if TRACER.enabled:
            TRACER.emit("cache.lookup", elapsed, kind="code",
                        outcome=outcome)
            TRACER.add(f"cache.code_{outcome}")
        return compiled

    # -- store ---------------------------------------------------------
    def store(self, entry: _EntryRef, compiled: CompiledMethod) -> None:
        started = time.perf_counter()
        blob = pickle.dumps(serialize_compiled(compiled),
                            protocol=pickle.HIGHEST_PROTOCOL)
        cache._store_bytes(entry.path, blob)
        self.stores += 1
        cache.STATS.count("code_stores")
        elapsed = time.perf_counter() - started
        cache.STATS.time("store_seconds", elapsed)
        if TRACER.enabled:
            TRACER.emit("cache.store", elapsed, kind="code")
        self._stores_since_gc += 1
        if self._stores_since_gc >= _GC_EVERY:
            self._stores_since_gc = 0
            self.gc()

    # -- eviction ------------------------------------------------------
    def gc(self, limit_bytes: int | None = None) -> int:
        """Evict least-recently-used entries until the archive fits the
        size budget; returns the number of entries evicted.  Hits touch
        their entry's mtime, so recency tracks use, not creation."""
        limit = self.limit_bytes if limit_bytes is None else limit_bytes
        directory = os.path.join(self.directory, "code")
        entries = []
        try:
            names = os.listdir(directory)
        except OSError:
            return 0
        for name in names:
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(directory, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
        total = sum(size for _, size, _ in entries)
        entries.sort()
        evicted = 0
        while entries and total > limit:
            _, size, path = entries.pop(0)
            with cache.FileLock(path):
                try:
                    os.remove(path)
                except OSError:
                    continue
                try:
                    os.remove(cache._digest_path(path))
                except OSError:
                    pass
            total -= size
            evicted += 1
            cache.STATS.count("code_evicted")
        if evicted and TRACER.enabled:
            TRACER.add("cache.code_evicted", evicted)
        return evicted

    # -- reporting -----------------------------------------------------
    def counters(self) -> dict:
        return {"dir": self.directory, "hits": self.hits,
                "misses": self.misses, "stores": self.stores}
