"""Tiered adaptive execution: the online answer to the paper's oracle.

The :class:`TieredController` drives a hotness ladder over the existing
execution machinery:

* **tier 0** — interpret, maintaining per-method invocation counts (at
  ``prepare_method``) and loop-backedge counts (at every backward
  branch);
* **tier 1** — baseline JIT: the existing template translator with the
  optimizer off (cheap translate, mediocre code);
* **tier 2** — optimizing JIT: the dataflow passes (dead-store
  elimination, escape-driven lock elision) plus two *speculations* —
  loaded-world CHA devirtualization and speculative lock elision on
  allocation sites escape analysis could not prove.

Transitions:

* **promotion** happens at method entry (invocation threshold) or at a
  loop backedge (backedge threshold);
* **OSR entry** promotes a *running* activation: the interpreter frame
  (pc, locals, operand stack, monitor slot) is mapped into the compiled
  code at the loop header (``RuntimeStubs.emit_osr_entry``) and the
  frame continues in ``EMIT_OSR`` mode;
* **deoptimization** fires when a speculation fails — an elided lock's
  object is touched by a foreign thread, or class loading breaks a CHA
  assumption.  The compiled code is discarded, every live activation is
  mapped back to an equivalent interpreter frame
  (``RuntimeStubs.emit_deopt``), the failed speculation is blacklisted,
  and the method re-profiles from zero before any re-promotion.

Everything here is emission-side policy: bytecode semantics live in the
single stepper, so tier transitions can never change program behaviour
— only the native trace and its cost.  The one genuinely speculative
*semantic* shortcut (skipping the lock manager for speculatively-elided
objects) is repaired exactly on failure: the owner's elided region is
replayed through the lock manager before the foreign thread proceeds,
so blocking behaviour matches a non-eliding run.
"""

from __future__ import annotations

from ..isa.opcodes import Op
from ..obs import TRACER
from ..sync.base import RECURSION_LIMIT
from .threads import EMIT_COMPILED, EMIT_INTERP, EMIT_OSR

#: Translate-cost model the tier-0 -> tier-1 decision prices against,
#: fit to the template translator's actual charges (linear in bytecode
#: count; see ``TranslateStubs.emit_translation``).  The controller only
#: needs an estimate — the real cost is charged when compiling happens.
TRANSLATE_CYCLES_PER_BYTECODE = 110
TRANSLATE_CYCLES_FIXED = 150

#: Install-cost model for methods already in the shared code archive
#: (one load/store pair per generated native instruction plus a fixed
#: relocation pass; see ``TranslateStubs.emit_install``).
INSTALL_CYCLES_PER_BYTECODE = 30
INSTALL_CYCLES_FIXED = 25


def estimated_translate_cycles(method) -> int:
    """Predicted cost of translating ``method`` (known before compiling)."""
    return TRANSLATE_CYCLES_FIXED + TRANSLATE_CYCLES_PER_BYTECODE * len(method.code)


def estimated_install_cycles(method) -> int:
    """Predicted cost of installing ``method`` from the code archive."""
    return INSTALL_CYCLES_FIXED + INSTALL_CYCLES_PER_BYTECODE * len(method.code)


class TierState:
    """Per-method ladder state (keyed by method_id on the controller)."""

    __slots__ = ("tier", "invocation_base", "backedge_base", "interp_base",
                 "cha_blacklist", "elide_blacklist", "transitions")

    def __init__(self) -> None:
        self.tier = 0
        #: profile counts at the last deopt: thresholds apply to events
        #: *since* then, which is what "re-profile before re-promotion"
        #: means operationally.
        self.invocation_base = 0
        self.backedge_base = 0
        self.interp_base = 0
        self.cha_blacklist: set = set()      # (class_name, method_name)
        self.elide_blacklist: set = set()    # alloc-site bytecode index
        self.transitions: list = []          # ("promote"|"osr"|"deopt", tier[, reason])


class TieredController:
    """Owns tier decisions, OSR and deoptimization for one VM."""

    def __init__(self, vm, strategy) -> None:
        self.vm = vm
        self.strategy = strategy
        self.states: dict[int, TierState] = {}
        # Aggregate transition counters (VMResult / manifests / spans).
        self.promotions_t1 = 0
        self.promotions_t2 = 0
        self.osr_entries = 0
        self.deopts = 0
        self.recompiles = 0
        self.deopt_reasons: dict[str, int] = {}
        self.speculative_marks = 0
        self.speculation_failures = 0
        self.archive_installs = 0
        #: method_id -> tier-1 archive probe result (memoized: the probe
        #: does a disk stat plus the key's resolution walk)
        self._archive_probe: dict[int, bool] = {}
        #: (class_name, method_name) -> [(dependent_method, assumed_target)]
        self.assumptions: dict[tuple, list] = {}
        #: method_id -> [(alloc site, proven thread-local)] for sites that
        #: allocate a class with synchronized methods (tier-2 screen).
        self._sync_alloc_sites: dict[int, list] = {}

    # ------------------------------------------------------------------
    # ladder state
    # ------------------------------------------------------------------
    def state_for(self, method) -> TierState:
        st = self.states.get(method.method_id)
        if st is None:
            st = self.states[method.method_id] = TierState()
        return st

    # ------------------------------------------------------------------
    # hotness events
    # ------------------------------------------------------------------
    def _hot_enough(self, method, st, profile) -> bool:
        """The tier-0 -> tier-1 pricing rule: promote once the method has
        burned ``compile_ratio`` x its estimated translate cost in the
        interpreter.  This is the oracle's ``n_i (I_i - E_i) > T_i``
        criterion restricted to online-observable quantities: interp
        cycles stand in for ``n_i I_i`` and the size-linear cost model
        for ``T_i``; methods too cold to ever repay translation never
        pass, methods with expensive loops pass mid-first-invocation."""
        spent = profile.interp_cycles - st.interp_base
        return spent >= (self.strategy.compile_ratio
                         * self._promotion_price(method))

    def _promotion_price(self, method) -> int:
        """Translate-cost estimate the t0 -> t1 decision prices against,
        discounted to the install-cost model when the shared code
        archive already holds this method's tier-1 code: warm workers
        repay compilation sooner, so they climb the ladder earlier (the
        fast-start half of the tradeoff the archive exists to move)."""
        jit = self.vm.jit
        if jit.archive is None:
            return estimated_translate_cycles(method)
        archived = self._archive_probe.get(method.method_id)
        if archived is None:
            archived = jit.archive.probe(jit, method, tier=1,
                                         optimize=False)
            self._archive_probe[method.method_id] = archived
        return (estimated_install_cycles(method) if archived
                else estimated_translate_cycles(method))

    def _tier2_profitable(self, method, st) -> bool:
        """The tier-1 -> tier-2 benefit screen: recompiling costs a full
        translate again, so it only happens when the optimizer can remove
        real work.  On this VM that means lock elision: the method must
        allocate a class that has synchronized methods at a site escape
        analysis proves thread-local (certain win) or, with speculation
        on, at an unproven site that has not been blacklisted by a prior
        deopt (insured win).  Dead-store elimination and CHA inlining
        alone never repay a retranslate here, so they ride along rather
        than justify the trip.  ``strategy.t2_screen=False`` disables
        the screen (stress configs that want every deopt path hot)."""
        if not self.strategy.t2_screen:
            return True
        sites = self._sync_alloc_sites.get(method.method_id)
        if sites is None:
            sites = []
            program = self.vm.loader.program
            for pc, ins in enumerate(method.code):
                if ins.op is not Op.NEW:
                    continue
                try:
                    target = program.get_class(
                        method.jclass.pool[ins.a].class_name)
                except KeyError:
                    continue
                if any(m.is_synchronized for m in target.methods.values()):
                    proven = pc in self.vm.elidable_sites(method)
                    sites.append((pc, proven))
            self._sync_alloc_sites[method.method_id] = sites
        static_safe = static_racy = frozenset()
        if self.vm.static_concurrency:
            static_safe, static_racy = self.vm.concurrency_plan(method)
        for pc, proven in sites:
            if proven or pc in static_safe:
                return True
            if (self.strategy.speculate and pc not in st.elide_blacklist
                    and pc not in static_racy):
                return True
        return False

    def on_invoke(self, method):
        """Invocation-count rung, called from ``prepare_method``.

        Returns the method's current compiled code (possibly just
        produced by a promotion), or ``None`` while it stays
        interpreted.
        """
        st = self.state_for(method)
        profile = self.vm.profiler.profile_for(method)
        n = profile.invocations - st.invocation_base
        s = self.strategy
        if st.tier == 0:
            if n >= s.t1_invocations and self._hot_enough(method, st, profile):
                return self._promote(method, st, profile, 1)
        elif st.tier == 1:
            if n >= s.t2_invocations and self._tier2_profitable(method, st):
                return self._promote(method, st, profile, 2)
        return self.vm._compiled.get(method.method_id)

    def on_backedge(self, thread, frame) -> None:
        """Loop-backedge rung, called by the branch handlers after a
        backward jump.  May promote the method and/or OSR this very
        activation into the compiled code."""
        profile = frame.profile
        if profile is None:
            return
        profile.backedges += 1
        frame.backedges += 1
        method = frame.method
        st = self.state_for(method)
        edges = profile.backedges - st.backedge_base
        s = self.strategy
        if st.tier == 0:
            if edges >= s.osr_backedges \
                    and self._hot_enough(method, st, profile):
                self._promote(method, st, profile, 1)
        elif st.tier == 1:
            if edges >= s.t2_backedges \
                    and self._tier2_profitable(method, st):
                self._promote(method, st, profile, 2)
        compiled = self.vm._compiled.get(method.method_id)
        if compiled is None:
            return
        mode = frame.emit_mode
        if mode == EMIT_INTERP or (
                mode >= EMIT_COMPILED and frame.compiled is not compiled):
            # Interpreted activation of a compiled method, or a tier-1
            # activation of a method since recompiled at tier 2: hop in
            # at this loop header.
            self._osr_enter(frame, compiled, st, profile)

    # ------------------------------------------------------------------
    # promotion / OSR
    # ------------------------------------------------------------------
    def _promote(self, method, st, profile, tier):
        vm = self.vm
        if tier >= 2:
            compiled = vm.jit.compile(
                method, tier=2, optimize=True,
                speculate_cha=self.strategy.speculate,
                cha_blacklist=frozenset(st.cha_blacklist),
            )
            for cname, mname, target in compiled.assumptions:
                self.assumptions.setdefault((cname, mname), []).append(
                    (method, target))
        else:
            compiled = vm.jit.compile(method, tier=1, optimize=False)
        if profile.was_compiled:
            self.recompiles += 1
        vm._compiled[method.method_id] = compiled
        vm._account_translation(method, compiled)
        st.tier = tier
        if compiled.from_archive:
            self.archive_installs += 1
            st.transitions.append(("promote", tier, "archive"))
            if TRACER.enabled:
                TRACER.add("vm.tier.archive_install")
        else:
            st.transitions.append(("promote", tier))
        profile.tier = tier
        profile.promotions += 1
        if tier == 1:
            self.promotions_t1 += 1
        else:
            self.promotions_t2 += 1
        if TRACER.enabled:
            TRACER.add(f"vm.tier.promote.t{tier}")
        return compiled

    def _osr_enter(self, frame, compiled, st, profile) -> None:
        """On-stack replacement: flip a live activation into compiled
        code at the loop header ``frame.ip`` now points at."""
        vm = self.vm
        frame.emit_mode = EMIT_OSR
        frame.chunks = compiled.chunks
        frame.compiled = compiled
        frame.backedges = 0
        vm.stubs.emit_osr_entry(
            vm.sink, frame, self._loop_header_pc(frame, compiled))
        st.transitions.append(("osr", st.tier))
        profile.osr_entries += 1
        self.osr_entries += 1
        if TRACER.enabled:
            TRACER.add("vm.tier.osr_entry")

    @staticmethod
    def _loop_header_pc(frame, compiled) -> int:
        """pc of the loop-header chunk (next non-empty at/after ip)."""
        chunks = compiled.chunks
        for i in range(frame.ip, len(chunks)):
            if chunks[i] is not None:
                return chunks[i].base_pc
        return compiled.entry_pc

    # ------------------------------------------------------------------
    # tier-2 speculation: lock elision beyond the static proof
    # ------------------------------------------------------------------
    def mark_allocation(self, thread, frame, obj) -> None:
        """Tier-2 allocation-site marking (called from the alloc ops).

        Sites escape analysis *proved* non-escaping elide exactly as the
        ``lock_elision`` config does.  Unproven, non-blacklisted sites
        are elided speculatively: the object remembers its site
        (``tl_spec``) so a foreign touch can repair and deoptimize.
        """
        compiled = frame.compiled
        if (compiled is None or compiled.tier < 2
                or frame.emit_mode < EMIT_COMPILED):
            return
        method = frame.method
        site = frame.ip - 1
        if site in self.vm.elidable_sites(method):
            obj.tl_thread = thread.thread_id
            return
        if self.vm.static_concurrency:
            safe, racy = self.vm.concurrency_plan(method)
            if site in safe:
                # Concurrency analysis proved every locker is the
                # allocating thread: elide without speculation.
                obj.tl_thread = thread.thread_id
                return
            if site in racy:
                return   # pre-blacklisted: a foreign lock is expected
        if not self.strategy.speculate:
            return
        st = self.states.get(method.method_id)
        if st is not None and site in st.elide_blacklist:
            return
        obj.tl_thread = thread.thread_id
        obj.tl_spec = (method.method_id, site)
        self.speculative_marks += 1

    def on_foreign_touch(self, obj) -> None:
        """A speculatively-elided object was reached by a foreign thread:
        the escape speculation failed.  Repair exactly, then deopt.

        If the owner is inside an elided region, the region is replayed
        through the lock manager on the owner's behalf (the shadow
        counters are unwound), so the foreign thread blocks precisely
        where a non-eliding run would block.  The allocation site is
        blacklisted and the allocating method deoptimized.
        """
        mid, site = obj.tl_spec
        obj.tl_spec = None
        owner = obj.tl_thread
        obj.tl_thread = None
        vm = self.vm
        depth = obj.elide_depth
        if depth:
            obj.elide_depth = 0
            stats = vm.lock_manager.stats
            stats.elided_acquires -= depth
            stats.elided_case_counts["a"] -= 1
            if depth > 1:
                stats.elided_case_counts["b"] -= min(depth - 1,
                                                     RECURSION_LIMIT - 1)
            if depth > RECURSION_LIMIT:
                stats.elided_case_counts["c"] -= depth - RECURSION_LIMIT
            for _ in range(depth):
                vm.lock_manager.acquire(owner, obj, vm.sink)
        self.speculation_failures += 1
        method = vm.loader.methods_by_id[mid]
        self.state_for(method).elide_blacklist.add(site)
        self.deoptimize(method, "lock_escape")

    # ------------------------------------------------------------------
    # tier-2 speculation: loaded-world CHA
    # ------------------------------------------------------------------
    def on_class_loaded(self, cls) -> None:
        """Class-load invalidation hook (``ClassLoader.on_load``).

        Any tier-2 method whose devirtualization assumed a unique
        *loaded* target that this class changes is deoptimized before
        an instance of the new class can ever be dispatched on.
        """
        if not self.assumptions:
            return
        hierarchy = self.vm.hierarchy
        for key, deps in list(self.assumptions.items()):
            if not deps:
                continue
            cname, mname = key
            if cls not in hierarchy.subclasses(cname):
                continue
            current = hierarchy.unique_loaded_target(cname, mname)
            for method, assumed in list(deps):
                if current is not assumed:
                    self.state_for(method).cha_blacklist.add(key)
                    self.deoptimize(method, "class_load")

    # ------------------------------------------------------------------
    # deoptimization
    # ------------------------------------------------------------------
    def deoptimize(self, method, reason: str) -> None:
        """Throw away the method's compiled code, map every live
        activation back to the interpreter, and restart profiling."""
        vm = self.vm
        mid = method.method_id
        st = self.state_for(method)
        invalidated = vm._compiled.pop(mid, None)
        profile = vm.profiler.profile_for(method)
        st.tier = 0
        st.invocation_base = profile.invocations
        st.backedge_base = profile.backedges
        st.interp_base = profile.interp_cycles
        st.transitions.append(("deopt", 0, reason))
        profile.tier = 0
        profile.deopts += 1
        self.deopts += 1
        self.deopt_reasons[reason] = self.deopt_reasons.get(reason, 0) + 1
        dispatch_pc = vm.templates.dispatch_pc
        for thread in vm.threads:
            for fr in thread.frames:
                if fr.method.method_id == mid \
                        and fr.emit_mode >= EMIT_COMPILED:
                    vm.stubs.emit_deopt(vm.sink, fr, dispatch_pc)
                    fr.emit_mode = EMIT_INTERP
                    fr.chunks = None
                    fr.compiled = None
                    fr.backedges = 0
        if invalidated is not None and invalidated.assumptions:
            for cname, mname, _target in invalidated.assumptions:
                deps = self.assumptions.get((cname, mname))
                if deps:
                    self.assumptions[(cname, mname)] = [
                        (m, t) for (m, t) in deps
                        if m.method_id != mid
                    ]
        if TRACER.enabled:
            TRACER.add("vm.tier.deopt")
            TRACER.add(f"vm.tier.deopt.{reason}")

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def counters(self) -> dict:
        return {
            "promotions_t1": self.promotions_t1,
            "promotions_t2": self.promotions_t2,
            "osr_entries": self.osr_entries,
            "deopts": self.deopts,
            "recompiles": self.recompiles,
            "speculative_marks": self.speculative_marks,
            "speculation_failures": self.speculation_failures,
            "archive_installs": self.archive_installs,
        }

    def snapshot(self) -> dict:
        """Manifest/VMResult-ready view of the run's tiering activity."""
        methods = {}
        by_id = self.vm.loader.methods_by_id
        for mid, st in self.states.items():
            if not st.transitions:
                continue
            methods[by_id[mid].qualified_name] = {
                "tier": st.tier,
                "transitions": [list(t) for t in st.transitions],
            }
        snap = {"strategy": self.strategy.describe()}
        snap.update(self.counters())
        snap["deopt_reasons"] = dict(self.deopt_reasons)
        snap["methods"] = methods
        return snap
