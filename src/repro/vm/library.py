"""The runtime class library.

A miniature ``java.lang``/``java.util``/``java.io``, partly in bytecode
(so it executes — and is profiled/compiled — like application code) and
partly as native methods.  Library behaviour drives key observations of
the paper: the heavily *synchronized* collection and I/O classes are
where most monitor operations come from (Section 5), and tiny accessor
methods are the JIT's inlining fodder (Section 4.1).

``ensure_library`` links these classes into any program that does not
already define them; ``boot_library`` creates the singletons
(``System.out``, the daemon queues) at VM boot.
"""

from __future__ import annotations

from ..isa.builder import ClassBuilder
from ..isa.method import Program
from ..isa.opcodes import ArrayType
from ..isa.verifier import verify_method
from .objects import JArray, JObject, JString

# ---------------------------------------------------------------------------
# native method implementations
# ---------------------------------------------------------------------------


def _obj_hashcode(vm, thread, args):
    return (args[0].addr >> 3) & 0x7FFFFFFF


def _obj_equals(vm, thread, args):
    return 1 if args[0] is args[1] else 0


def _obj_tostring(vm, thread, args):
    obj = args[0]
    name = obj.jclass.name if isinstance(obj, JObject) else "Object"
    return vm.intern_string(f"{name}@{obj.addr:x}")


def _string_value(ref) -> str:
    if isinstance(ref, JString):
        return ref.value
    raise TypeError(f"expected a String, got {ref!r}")


def _str_length(vm, thread, args):
    return len(_string_value(args[0]))


def _str_charat(vm, thread, args):
    s = _string_value(args[0])
    return ord(s[args[1]])


def _str_equals(vm, thread, args):
    other = args[1]
    if not isinstance(other, JString):
        return 0
    return 1 if args[0].value == other.value else 0


def _str_hashcode(vm, thread, args):
    h = 0
    for ch in _string_value(args[0]):
        h = (h * 31 + ord(ch)) & 0xFFFFFFFF
    return h - (1 << 32) if h & (1 << 31) else h


def _str_indexof(vm, thread, args):
    return _string_value(args[0]).find(chr(args[1]))


def _str_concat(vm, thread, args):
    out = _string_value(args[0]) + _string_value(args[1])
    result = vm.heap.new_string(out)
    vm.stubs.emit_copy(vm.sink, args[0].data_addr(), result.data_addr(),
                       len(out), 2)
    return result


def _str_substring(vm, thread, args):
    s = _string_value(args[0])
    return vm.heap.new_string(s[args[1]:args[2]])


def _sb_grow(vm, thread, args):
    sb = args[0]
    old = sb.fields["chars"]
    grown = vm.heap.new_array(ArrayType.CHAR, max(16, old.length * 2))
    grown.data[: old.length] = old.data
    vm.stubs.emit_copy(vm.sink, old.elem_addr(0), grown.elem_addr(0),
                       old.length, 2)
    sb.fields["chars"] = grown


def _sb_tostring(vm, thread, args):
    sb = args[0]
    chars = sb.fields["chars"]
    count = sb.fields["count"]
    text = "".join(chr(c) for c in chars.data[:count])
    result = vm.heap.new_string(text)
    vm.stubs.emit_copy(vm.sink, chars.elem_addr(0), result.data_addr(),
                       count, 2)
    return result


def _sb_append_str(vm, thread, args):
    sb, s = args[0], _string_value(args[1])
    chars = sb.fields["chars"]
    count = sb.fields["count"]
    while count + len(s) > chars.length:
        _sb_grow(vm, thread, (sb,))
        chars = sb.fields["chars"]
    for i, ch in enumerate(s):
        chars.data[count + i] = ord(ch)
    sb.fields["count"] = count + len(s)
    vm.stubs.emit_copy(vm.sink, args[1].data_addr(),
                       chars.elem_addr(count), len(s), 2)
    return sb


def _hashtable_key(ref):
    if isinstance(ref, JString):
        return ("s", ref.value)
    if isinstance(ref, int):
        return ("i", ref)
    return ("o", id(ref))


def _ht_init(vm, thread, args):
    args[0].fields["_map"] = {}


def _ht_put(vm, thread, args):
    table, key, value = args
    table.fields["_map"][_hashtable_key(key)] = value


def _ht_get(vm, thread, args):
    return args[0].fields["_map"].get(_hashtable_key(args[1]))


def _ht_containskey(vm, thread, args):
    return 1 if _hashtable_key(args[1]) in args[0].fields["_map"] else 0


def _ht_size(vm, thread, args):
    return len(args[0].fields["_map"])


def _math_sqrt(vm, thread, args):
    return float(args[0]) ** 0.5 if args[0] >= 0 else float("nan")


def _math_sin(vm, thread, args):
    import math
    return math.sin(args[0])


def _math_cos(vm, thread, args):
    import math
    return math.cos(args[0])


def _math_iabs(vm, thread, args):
    return -args[0] if args[0] < 0 else args[0]


def _math_fabs(vm, thread, args):
    return abs(float(args[0]))


def _math_imax(vm, thread, args):
    return max(args[0], args[1])


def _math_imin(vm, thread, args):
    return min(args[0], args[1])


def _system_arraycopy(vm, thread, args):
    src, spos, dst, dpos, n = args
    if not (isinstance(src, JArray) and isinstance(dst, JArray)):
        raise TypeError("arraycopy needs arrays")
    dst.data[dpos:dpos + n] = src.data[spos:spos + n]
    if n > 0:
        vm.stubs.emit_copy(vm.sink, src.elem_addr(spos), dst.elem_addr(dpos),
                           n, src.elem_bytes)


def _system_millis(vm, thread, args):
    return (vm.sink.cycles // 1_000_000) & 0x7FFFFFFF


def _ps_println(vm, thread, args):
    text = args[1]
    vm.stdout.append(text.value if isinstance(text, JString) else str(text))


def _ps_println_int(vm, thread, args):
    vm.stdout.append(str(args[1]))


def _thread_start(vm, thread, args):
    vm.spawn_thread(args[0])


def _thread_join(vm, thread, args):
    target = vm.thread_for(args[0])
    if target is None or not target.is_alive:
        return None
    if thread not in target.joined_by:
        target.joined_by.append(thread)
    from .threads import WAITING
    thread.state = WAITING
    return vm.NATIVE_BLOCKED


def _thread_isalive(vm, thread, args):
    target = vm.thread_for(args[0])
    return 1 if (target is not None and target.is_alive) else 0


# ---------------------------------------------------------------------------
# class builders
# ---------------------------------------------------------------------------


def _build_object() -> ClassBuilder:
    cb = ClassBuilder("java/lang/Object", super_name=None)
    init = cb.method("<init>")
    init.return_()
    cb.native_method("hashCode", 0, True, _obj_hashcode, cost=15,
                     escape=("none",))
    cb.native_method("equals", 1, True, _obj_equals, cost=10,
                     escape=("none", "none"))
    cb.native_method("toString", 0, True, _obj_tostring, cost=40,
                     escape=("none",))
    return cb


def _build_string() -> ClassBuilder:
    cb = ClassBuilder("java/lang/String")
    cb.native_method("length", 0, True, _str_length, cost=10,
                     escape=("none",))
    cb.native_method("charAt", 1, True, _str_charat, cost=15,
                     escape=("none", "none"))
    cb.native_method("equals", 1, True, _str_equals, cost=40,
                     escape=("none", "none"))
    cb.native_method("hashCode", 0, True, _str_hashcode, cost=40,
                     escape=("none",))
    cb.native_method("indexOf", 1, True, _str_indexof, cost=40,
                     escape=("none", "none"))
    cb.native_method("concat", 1, True, _str_concat, cost=80,
                     escape=("none", "none"))
    cb.native_method("substring", 2, True, _str_substring, cost=40,
                     escape=("none", "none", "none"))
    return cb


def _build_stringbuffer() -> ClassBuilder:
    cb = ClassBuilder("java/lang/StringBuffer")
    cb.field("chars", "ref")
    cb.field("count", "int")

    init = cb.method("<init>")
    init.aload(0).iconst(16).newarray(ArrayType.CHAR)
    init.putfield("java/lang/StringBuffer", "chars")
    init.aload(0).iconst(0).putfield("java/lang/StringBuffer", "count")
    init.return_()

    # synchronized StringBuffer append(char c)
    ap = cb.method("append", argc=1, returns=True, synchronized=True)
    ok = ap.new_label("ok")
    ap.aload(0).getfield("java/lang/StringBuffer", "count")
    ap.aload(0).getfield("java/lang/StringBuffer", "chars").arraylength()
    ap.if_icmplt(ok)
    ap.aload(0).invokevirtual("java/lang/StringBuffer", "_grow", 0, False)
    ap.bind(ok)
    ap.aload(0).getfield("java/lang/StringBuffer", "chars")
    ap.aload(0).getfield("java/lang/StringBuffer", "count")
    ap.iload(1).castore()
    ap.aload(0).dup().getfield("java/lang/StringBuffer", "count")
    ap.iconst(1).iadd().putfield("java/lang/StringBuffer", "count")
    ap.aload(0).areturn()

    ln = cb.method("length", returns=True)
    ln.aload(0).getfield("java/lang/StringBuffer", "count").ireturn()

    cb.native_method("_grow", 0, False, _sb_grow, synchronized=True, cost=80,
                     escape=("none",))
    cb.native_method("toString", 0, True, _sb_tostring,
                     synchronized=True, cost=80, escape=("none",))
    cb.native_method("appendString", 1, True, _sb_append_str,
                     synchronized=True, cost=80, escape=("none", "none"))
    return cb


def _build_vector() -> ClassBuilder:
    cb = ClassBuilder("java/util/Vector")
    cb.field("elems", "ref")
    cb.field("count", "int")

    init = cb.method("<init>", argc=1)
    init.aload(0).iload(1).anewarray("java/lang/Object")
    init.putfield("java/util/Vector", "elems")
    init.aload(0).iconst(0).putfield("java/util/Vector", "count")
    init.return_()

    # synchronized void addElement(Object o)
    add = cb.method("addElement", argc=1, synchronized=True)
    ok = add.new_label("ok")
    add.aload(0).getfield("java/util/Vector", "count")
    add.aload(0).getfield("java/util/Vector", "elems").arraylength()
    add.if_icmplt(ok)
    add.aload(0).invokevirtual("java/util/Vector", "_grow", 0, False)
    add.bind(ok)
    add.aload(0).getfield("java/util/Vector", "elems")
    add.aload(0).getfield("java/util/Vector", "count")
    add.aload(1).aastore()
    add.aload(0).dup().getfield("java/util/Vector", "count")
    add.iconst(1).iadd().putfield("java/util/Vector", "count")
    add.return_()

    # synchronized Object elementAt(int i)
    at = cb.method("elementAt", argc=1, returns=True, synchronized=True)
    at.aload(0).getfield("java/util/Vector", "elems")
    at.iload(1).aaload().areturn()

    size = cb.method("size", returns=True, synchronized=True)
    size.aload(0).getfield("java/util/Vector", "count").ireturn()

    # synchronized Object[] elems(): snapshot of the backing array, used
    # by scan-heavy callers to lock once per operation (the pattern
    # synchronized JDK collections use internally).
    elems = cb.method("elems", returns=True, synchronized=True)
    elems.aload(0).getfield("java/util/Vector", "elems").areturn()

    clear = cb.method("removeAllElements", synchronized=True)
    clear.aload(0).iconst(0).putfield("java/util/Vector", "count")
    clear.return_()

    def _vec_grow(vm, thread, args):
        vec = args[0]
        old = vec.fields["elems"]
        grown = vm.heap.new_array("ref", max(8, old.length * 2))
        grown.data[: old.length] = old.data
        vm.stubs.emit_copy(vm.sink, old.elem_addr(0), grown.elem_addr(0),
                           old.length, 4)
        vec.fields["elems"] = grown

    cb.native_method("_grow", 0, False, _vec_grow, synchronized=True, cost=80,
                     escape=("none",))
    return cb


def _build_hashtable() -> ClassBuilder:
    cb = ClassBuilder("java/util/Hashtable")
    cb.native_method("<init>", 0, False, _ht_init, cost=20,
                     escape=("none",))
    put = cb.method("put", argc=2, synchronized=True)
    put.aload(0).aload(1).aload(2)
    put.invokevirtual("java/util/Hashtable", "_putNative", 2, False)
    put.return_()
    # the key/value references are retained by the table
    cb.native_method("_putNative", 2, False, _ht_put,
                     synchronized=True, cost=80,
                     escape=("none", "global", "global"))
    cb.native_method("get", 1, True, _ht_get, synchronized=True, cost=40,
                     escape=("none", "none"))
    cb.native_method("containsKey", 1, True, _ht_containskey,
                     synchronized=True, cost=40, escape=("none", "none"))
    cb.native_method("size", 0, True, _ht_size, synchronized=True, cost=10,
                     escape=("none",))
    return cb


def _build_math() -> ClassBuilder:
    cb = ClassBuilder("java/lang/Math")
    cb.native_method("sqrt", 1, True, _math_sqrt, static=True, cost=40)
    cb.native_method("sin", 1, True, _math_sin, static=True, cost=80)
    cb.native_method("cos", 1, True, _math_cos, static=True, cost=80)
    cb.native_method("abs", 1, True, _math_iabs, static=True, cost=10)
    cb.native_method("fabs", 1, True, _math_fabs, static=True, cost=10)
    cb.native_method("max", 2, True, _math_imax, static=True, cost=10)
    cb.native_method("min", 2, True, _math_imin, static=True, cost=10)
    return cb


def _build_system() -> ClassBuilder:
    cb = ClassBuilder("java/lang/System")
    cb.static_field("out", "ref")
    cb.native_method("arraycopy", 5, False, _system_arraycopy,
                     static=True, cost=40,
                     escape=("none", "none", "none", "none", "none"))
    cb.native_method("currentTimeMillis", 0, True, _system_millis,
                     static=True, cost=20)
    return cb


def _build_printstream() -> ClassBuilder:
    cb = ClassBuilder("java/io/PrintStream")
    # println is a synchronized bytecode wrapper over a synchronized
    # native write — the classic recursive-lock (case b) pattern in
    # JDK I/O streams.
    pl = cb.method("println", argc=1, synchronized=True)
    pl.aload(0).aload(1)
    pl.invokevirtual("java/io/PrintStream", "_write", 1, False)
    pl.return_()
    pli = cb.method("printlnInt", argc=1, synchronized=True)
    pli.aload(0).iload(1)
    pli.invokevirtual("java/io/PrintStream", "_writeInt", 1, False)
    pli.return_()
    cb.native_method("_write", 1, False, _ps_println,
                     synchronized=True, cost=160, escape=("none", "none"))
    cb.native_method("_writeInt", 1, False, _ps_println_int,
                     synchronized=True, cost=160, escape=("none", "none"))
    return cb


def _build_thread() -> ClassBuilder:
    cb = ClassBuilder("java/lang/Thread")
    cb.field("_tid", "int")
    init = cb.method("<init>")
    init.return_()
    run = cb.method("run")
    run.return_()
    cb.native_method("start", 0, False, _thread_start, cost=160)
    cb.native_method("join", 0, False, _thread_join, cost=40)
    cb.native_method("isAlive", 0, True, _thread_isalive, cost=20)
    return cb


def _build_random() -> ClassBuilder:
    cb = ClassBuilder("java/util/Random")
    cb.field("seed", "int")
    init = cb.method("<init>", argc=1)
    init.aload(0).iload(1).putfield("java/util/Random", "seed")
    init.return_()
    # int nextInt(int n): LCG, result in [0, n)
    ni = cb.method("nextInt", argc=1, returns=True)
    ni.aload(0).dup().getfield("java/util/Random", "seed")
    ni.iconst(1103515245).imul().iconst(12345).iadd()
    ni.iconst(0x7FFFFFFF).iand()
    ni.putfield("java/util/Random", "seed")
    ni.aload(0).getfield("java/util/Random", "seed")
    ni.iload(1).irem().ireturn()
    return cb


def _build_daemon(name: str, iterations: int) -> ClassBuilder:
    """Internal service threads (finalizer / weak-reference handler).

    Even single-threaded SpecJVM98 programs run these; they perform a
    few synchronized passes over their queues at start-up, contributing
    background case-(a) lock traffic (Section 5).
    """
    cb = ClassBuilder(name, super_name="java/lang/Thread")
    cb.static_field("queue", "ref")
    run = cb.method("run")
    loop = run.new_label("loop")
    end = run.new_label("end")
    run.iconst(iterations).istore(1)
    run.bind(loop)
    run.iload(1).ifle(end)
    run.getstatic(name, "queue").astore(2)
    run.aload(2).monitorenter()
    run.aload(2).monitorexit()
    run.iinc(1, -1)
    run.goto(loop)
    run.bind(end)
    run.return_()
    return cb


#: Names of the classes the library provides.
LIBRARY_CLASSES = (
    "java/lang/Object",
    "java/lang/String",
    "java/lang/StringBuffer",
    "java/util/Vector",
    "java/util/Hashtable",
    "java/lang/Math",
    "java/lang/System",
    "java/io/PrintStream",
    "java/lang/Thread",
    "java/util/Random",
    "repro/Finalizer",
    "repro/RefCleaner",
)


def build_library() -> list:
    """Fresh library classes (runtime state must not be shared across VMs)."""
    builders = [
        _build_object(),
        _build_string(),
        _build_stringbuffer(),
        _build_vector(),
        _build_hashtable(),
        _build_math(),
        _build_system(),
        _build_printstream(),
        _build_thread(),
        _build_random(),
        _build_daemon("repro/Finalizer", 6),
        _build_daemon("repro/RefCleaner", 4),
    ]
    classes = [cb.build() for cb in builders]
    for cls in classes:
        for method in cls.methods.values():
            if not method.is_native:
                verify_method(method)
                method.compute_layout()
    return classes


def ensure_library(program: Program) -> None:
    """Link the library into a program that does not already carry it."""
    if "java/lang/Object" in program.classes:
        return
    for cls in build_library():
        if cls.name not in program.classes:
            program.add_class(cls)


def boot_library(vm) -> None:
    """Create library singletons (System.out, daemon queues)."""
    loader = vm.loader
    system = loader.ensure_loaded("java/lang/System")
    ps = loader.ensure_loaded("java/io/PrintStream")
    system.statics["out"] = vm.heap.new_object(ps)
    for name in ("repro/Finalizer", "repro/RefCleaner"):
        if name in vm.program.classes:
            cls = loader.ensure_loaded(name)
            cls.statics["queue"] = vm.heap.new_object(vm.object_class)
