"""The simulated Java virtual machine."""

from .heap import Heap, OutOfMemoryError
from .interpreter import Interpreter, VMError
from .machine import DeadlockError, ExecutionLimitExceeded, JavaVM, VMResult
from .objects import JArray, JObject, JString
from .profiler import MethodProfile, Profiler
from .strategy import (
    CompileOnFirstUse,
    CounterThreshold,
    InterpretOnly,
    OracleStrategy,
    Strategy,
    TieredStrategy,
)
from .threads import Frame, JThread
from .tiering import TieredController

__all__ = [
    "CompileOnFirstUse",
    "CounterThreshold",
    "DeadlockError",
    "ExecutionLimitExceeded",
    "Frame",
    "Heap",
    "Interpreter",
    "InterpretOnly",
    "JArray",
    "JObject",
    "JString",
    "JThread",
    "JavaVM",
    "MethodProfile",
    "OracleStrategy",
    "OutOfMemoryError",
    "Profiler",
    "Strategy",
    "TieredController",
    "TieredStrategy",
    "VMError",
    "VMResult",
]
