"""The simulated Java virtual machine."""

from .heap import Heap, OutOfMemoryError
from .interpreter import Interpreter, VMError
from .machine import DeadlockError, ExecutionLimitExceeded, JavaVM, VMResult
from .objects import JArray, JObject, JString
from .profiler import MethodProfile, Profiler
from .strategy import (
    CompileOnFirstUse,
    CounterThreshold,
    InterpretOnly,
    OracleStrategy,
    Strategy,
)
from .threads import Frame, JThread

__all__ = [
    "CompileOnFirstUse",
    "CounterThreshold",
    "DeadlockError",
    "ExecutionLimitExceeded",
    "Frame",
    "Heap",
    "Interpreter",
    "InterpretOnly",
    "JArray",
    "JObject",
    "JString",
    "JThread",
    "JavaVM",
    "MethodProfile",
    "OracleStrategy",
    "OutOfMemoryError",
    "Profiler",
    "Strategy",
    "VMError",
    "VMResult",
]
