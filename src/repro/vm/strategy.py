"""Compilation strategies: when (or whether) to translate a method.

The paper's Section 3 compares:

- interpret-only (``InterpretOnly``),
- Kaffe's default of compiling every method on its first invocation
  (``CompileOnFirstUse``),
- an idealized oracle that compiles exactly the methods for which
  translation pays off (``OracleStrategy``; decisions are produced by
  :mod:`repro.analysis.hybrid` from profiling runs),
- and, as an ablation, a HotSpot-style invocation-counter threshold
  (``CounterThreshold``).
"""

from __future__ import annotations


class Strategy:
    """Decides, per invocation, whether a method should now be compiled."""

    name = "abstract"

    def should_compile(self, method, invocation_count: int) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class InterpretOnly(Strategy):
    """Never compile — a pure interpreter (JDK/Kaffe -nojit)."""

    name = "interp"

    def should_compile(self, method, invocation_count: int) -> bool:
        return False


class CompileOnFirstUse(Strategy):
    """Kaffe's default JIT policy: translate on first invocation."""

    name = "jit"

    def should_compile(self, method, invocation_count: int) -> bool:
        return True


class CounterThreshold(Strategy):
    """Interpret the first ``threshold - 1`` invocations, then compile."""

    name = "counter"

    def __init__(self, threshold: int = 2) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold

    def should_compile(self, method, invocation_count: int) -> bool:
        return invocation_count >= self.threshold

    def __repr__(self) -> str:
        return f"CounterThreshold({self.threshold})"


class OracleStrategy(Strategy):
    """The paper's ``opt`` model: a supplied set of methods (chosen with
    perfect knowledge of ``n_i`` and ``N_i``) is compiled on first use;
    everything else is always interpreted."""

    name = "oracle"

    def __init__(self, compile_set: set[str]) -> None:
        self.compile_set = frozenset(compile_set)

    def should_compile(self, method, invocation_count: int) -> bool:
        return method.qualified_name in self.compile_set

    def __repr__(self) -> str:
        return f"OracleStrategy({len(self.compile_set)} methods)"
