"""Compilation strategies: when (or whether) to translate a method.

The paper's Section 3 compares:

- interpret-only (``InterpretOnly``),
- Kaffe's default of compiling every method on its first invocation
  (``CompileOnFirstUse``),
- an idealized oracle that compiles exactly the methods for which
  translation pays off (``OracleStrategy``; decisions are produced by
  :mod:`repro.analysis.hybrid` from profiling runs),
- as an ablation, a HotSpot-style invocation-counter threshold
  (``CounterThreshold``),
- and the online answer to the oracle: ``TieredStrategy``, a hotness
  ladder (interpret -> baseline JIT -> optimizing JIT) driven by the
  invocation and loop-backedge counters the interpreter maintains, with
  on-stack replacement and deoptimization handled by
  :class:`repro.vm.tiering.TieredController`.
"""

from __future__ import annotations


class Strategy:
    """Decides, per invocation, whether a method should now be compiled."""

    name = "abstract"

    def should_compile(self, method, invocation_count: int) -> bool:
        raise NotImplementedError

    def describe(self) -> dict:
        """Manifest-ready config: strategy name plus any thresholds."""
        return {"name": self.name}

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class InterpretOnly(Strategy):
    """Never compile — a pure interpreter (JDK/Kaffe -nojit)."""

    name = "interp"

    def should_compile(self, method, invocation_count: int) -> bool:
        return False


class CompileOnFirstUse(Strategy):
    """Kaffe's default JIT policy: translate on first invocation."""

    name = "jit"

    def should_compile(self, method, invocation_count: int) -> bool:
        return True


class CounterThreshold(Strategy):
    """Interpret the first ``threshold - 1`` invocations, then compile."""

    name = "counter"

    def __init__(self, threshold: int = 2) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold

    def should_compile(self, method, invocation_count: int) -> bool:
        return invocation_count >= self.threshold

    def describe(self) -> dict:
        return {"name": self.name, "threshold": self.threshold}

    def __repr__(self) -> str:
        return f"CounterThreshold({self.threshold})"


class TieredStrategy(Strategy):
    """Online tier ladder: interpret, then baseline-JIT hot methods, then
    recompile the hottest with the analysis-heavy optimizer.

    Promotion is decided by the :class:`~repro.vm.tiering.TieredController`
    from the hotness signals the interpreter maintains: invocation counts
    (checked at method entry), loop-backedge counts (checked at every
    backward branch, enabling OSR into a running activation), and the
    interpret cycles charged to the method so far.  A method reaches
    tier 1 once it has *burned* ``compile_ratio`` times its estimated
    translate cost in the interpreter — the online approximation of the
    oracle's ``n_i > N_i = T_i / (I_i - E_i)`` rule, using only
    quantities the runtime can observe — subject to the
    ``t1_invocations`` / ``osr_backedges`` minimum-event gates.  Tier 2
    is counter-driven (``t2_invocations`` / ``t2_backedges``) but also
    screened for benefit: a retranslate only pays when the optimizer
    will remove real work (see ``TieredController._tier2_profitable``).
    All counters measure events *since the last deoptimization* of the
    method, so a deopted method re-profiles before re-promotion.

    ``speculate`` enables the tier-2 speculations that deoptimization
    exists to undo (loaded-world CHA devirtualization, speculative lock
    elision on unproven allocation sites); with it off, tier 2 is the
    statically sound optimizer only.
    """

    name = "tiered"

    def __init__(self, t1_invocations: int = 2, t2_invocations: int = 64,
                 osr_backedges: int = 4, t2_backedges: int = 512,
                 compile_ratio: float = 0.125,
                 speculate: bool = True,
                 t2_screen: bool = True) -> None:
        if min(t1_invocations, t2_invocations,
               osr_backedges, t2_backedges) < 1:
            raise ValueError("tier thresholds must be >= 1")
        if t2_invocations <= t1_invocations:
            raise ValueError("t2_invocations must exceed t1_invocations")
        if compile_ratio <= 0:
            raise ValueError("compile_ratio must be positive")
        self.t1_invocations = t1_invocations
        self.t2_invocations = t2_invocations
        self.osr_backedges = osr_backedges
        self.t2_backedges = t2_backedges
        self.compile_ratio = compile_ratio
        self.speculate = speculate
        #: With the screen off, any method passing the tier-2 counters is
        #: recompiled and unproven allocation sites are speculated on
        #: wholesale — slower, but it exercises every deopt path, which
        #: is what the fuzz oracle and the CI smoke run want.
        self.t2_screen = t2_screen

    def should_compile(self, method, invocation_count: int) -> bool:
        # Entry-point compatibility only; the controller owns the real
        # per-tier decisions (machine.prepare_method routes to it).
        return invocation_count >= self.t1_invocations

    def describe(self) -> dict:
        return {
            "name": self.name,
            "t1_invocations": self.t1_invocations,
            "t2_invocations": self.t2_invocations,
            "osr_backedges": self.osr_backedges,
            "t2_backedges": self.t2_backedges,
            "compile_ratio": self.compile_ratio,
            "speculate": self.speculate,
            "t2_screen": self.t2_screen,
        }

    def __repr__(self) -> str:
        return (f"TieredStrategy(t1={self.t1_invocations}, "
                f"t2={self.t2_invocations}, osr={self.osr_backedges}, "
                f"t2_edges={self.t2_backedges}, "
                f"ratio={self.compile_ratio})")


class OracleStrategy(Strategy):
    """The paper's ``opt`` model: a supplied set of methods (chosen with
    perfect knowledge of ``n_i`` and ``N_i``) is compiled on first use;
    everything else is always interpreted."""

    name = "oracle"

    def __init__(self, compile_set: set[str]) -> None:
        self.compile_set = frozenset(compile_set)

    def should_compile(self, method, invocation_count: int) -> bool:
        return method.qualified_name in self.compile_set

    def describe(self) -> dict:
        return {"name": self.name, "compile_set_size": len(self.compile_set)}

    def __repr__(self) -> str:
        return f"OracleStrategy({len(self.compile_set)} methods)"
