"""Java threads and activation frames.

Threads are green threads scheduled by the VM at bytecode granularity.
Each thread owns a region of the simulated stack space; frames carve
consecutive chunks out of it, so locals/operand-stack accesses hit
realistic, heavily reused addresses — the basis of the interpreter's
good data-cache behaviour reported by the paper.
"""

from __future__ import annotations

from ..isa.method import Method
from ..native.layout import STACK_SIZE_PER_THREAD, WORD_BYTES, thread_stack_base

# Thread states.
RUNNABLE = "runnable"
BLOCKED = "blocked"     # waiting to acquire a monitor
WAITING = "waiting"     # waiting in join()
FINISHED = "finished"

#: Per-frame bookkeeping bytes (saved vpc, method pointer, previous frame).
FRAME_HEADER_BYTES = 16

# Frame emit modes.  EMIT_OSR marks an activation that entered compiled
# code mid-execution via on-stack replacement: it emits exactly what
# EMIT_COMPILED emits (handlers test ``mode >= EMIT_COMPILED``), but the
# distinct mode keeps OSR'd dispatch separately attributable in the
# observability buckets.
EMIT_NONE = 0
EMIT_INTERP = 1
EMIT_COMPILED = 2
EMIT_OSR = 3


class StackOverflow(Exception):
    """Thread stack region exhausted (runaway recursion)."""


class Frame:
    """One method activation."""

    __slots__ = (
        "method",
        "code",
        "ip",
        "stack",
        "locals",
        "frame_base",
        "locals_addr",
        "stack_addr",
        "emit_mode",
        "chunks",
        "compiled",
        "sync_obj",
        "return_pc",
        "size_bytes",
        "profile",
        "backedges",
    )

    def __init__(self, method: Method, frame_base: int) -> None:
        self.method = method
        self.code = method.code
        self.ip = 0
        self.stack: list = []
        self.locals: list = [0] * method.max_locals
        self.frame_base = frame_base
        self.locals_addr = frame_base + FRAME_HEADER_BYTES
        self.stack_addr = self.locals_addr + WORD_BYTES * method.max_locals
        self.size_bytes = (
            FRAME_HEADER_BYTES
            + WORD_BYTES * (method.max_locals + method.max_stack + 2)
        )
        self.emit_mode = EMIT_NONE
        self.chunks = None        # per-instruction compiled chunks (JIT mode)
        self.compiled = None      # CompiledMethod when emit_mode is COMPILED
        self.sync_obj = None      # monitor held while in a synchronized method
        self.return_pc = 0        # native pc execution resumes at on return
        self.profile = None       # MethodProfile cached at push time
        self.backedges = 0        # loop back-edges taken in this activation

    def slot_addr(self, depth: int) -> int:
        """Address of operand-stack slot ``depth`` (0 = bottom)."""
        return self.stack_addr + WORD_BYTES * depth

    def local_addr(self, index: int) -> int:
        return self.locals_addr + WORD_BYTES * index

    def __repr__(self) -> str:
        return f"Frame({self.method.qualified_name}@{self.ip})"


class JThread:
    """A green thread executing on the VM."""

    _next_id = 0

    def __init__(self, name: str = "", daemon: bool = False) -> None:
        self.thread_id = JThread._next_id
        JThread._next_id += 1
        self.name = name or f"thread-{self.thread_id}"
        self.daemon = daemon
        self.state = RUNNABLE
        self.frames: list[Frame] = []
        self.stack_base = thread_stack_base(self.thread_id)
        self._stack_cursor = 0
        self.blocked_on = None          # object whose monitor we're queued on
        self.joined_by: list[JThread] = []
        self.java_obj = None            # the java/lang/Thread instance, if any
        self.bytecodes_executed = 0

    @classmethod
    def reset_ids(cls) -> None:
        """Restart thread-id numbering (one VM per process run)."""
        cls._next_id = 0

    # -- frame management ----------------------------------------------------
    def push_frame(self, method: Method) -> Frame:
        frame = Frame(method, self.stack_base + self._stack_cursor)
        if self._stack_cursor + frame.size_bytes > STACK_SIZE_PER_THREAD:
            raise StackOverflow(
                f"{self.name}: stack overflow entering {method.qualified_name}"
            )
        self._stack_cursor += frame.size_bytes
        self.frames.append(frame)
        return frame

    def pop_frame(self) -> Frame:
        frame = self.frames.pop()
        self._stack_cursor -= frame.size_bytes
        return frame

    @property
    def current_frame(self) -> Frame | None:
        return self.frames[-1] if self.frames else None

    @property
    def is_alive(self) -> bool:
        return self.state != FINISHED

    def __repr__(self) -> str:
        return f"JThread({self.name}, {self.state}, {len(self.frames)} frames)"
