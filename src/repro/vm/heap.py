"""The garbage-collected object heap.

A bump-pointer allocator over the simulated heap region with a
mark–sweep collector.  The collector does not move objects (addresses
are identity for the trace layer); swept space is recycled through a
first-fit free list.

The paper's experiments deliberately exclude GC effects, so the default
heap is sized to avoid collection for the bundled workloads — but the
collector is real and exercised by tests and the GC example.
"""

from __future__ import annotations

from ..isa.method import JClass
from ..native.layout import HEAP_BASE, HEAP_SIZE
from .objects import HeapRef, JArray, JObject, JString


class OutOfMemoryError(Exception):
    """Heap exhausted even after collection."""


class HeapStats:
    """Allocation statistics (feeds the Table 1 footprint study)."""

    def __init__(self) -> None:
        self.allocations = 0
        self.allocated_bytes = 0
        self.live_bytes = 0
        self.peak_live_bytes = 0
        self.gc_count = 0
        self.gc_freed_bytes = 0

    def snapshot(self) -> dict:
        return {
            "allocations": self.allocations,
            "allocated_bytes": self.allocated_bytes,
            "live_bytes": self.live_bytes,
            "peak_live_bytes": self.peak_live_bytes,
            "gc_count": self.gc_count,
            "gc_freed_bytes": self.gc_freed_bytes,
        }


class Heap:
    """Bump + free-list allocator with mark–sweep collection."""

    #: Allocation granule; keeps the free list simple.
    ALIGN = 8

    def __init__(self, limit_bytes: int = HEAP_SIZE,
                 base: int = HEAP_BASE) -> None:
        self.base = base
        self.limit_bytes = min(limit_bytes, HEAP_SIZE)
        self._cursor = base
        self._free: list[tuple[int, int]] = []  # (addr, size), sorted by addr
        self.objects: dict[int, object] = {}    # addr -> object
        self._sizes: dict[int, int] = {}        # addr -> reserved size
        self.stats = HeapStats()
        #: Hook the VM installs to find GC roots: () -> iterable of refs.
        self.root_provider = None
        #: Hook called after each collection with freed byte count.
        self.gc_listener = None

    # -- allocation ------------------------------------------------------
    def _align(self, nbytes: int) -> int:
        return (nbytes + self.ALIGN - 1) & ~(self.ALIGN - 1)

    def _reserve(self, nbytes: int) -> int:
        nbytes = self._align(max(nbytes, self.ALIGN))
        # First-fit from the free list.
        for i, (addr, size) in enumerate(self._free):
            if size >= nbytes:
                if size == nbytes:
                    self._free.pop(i)
                else:
                    self._free[i] = (addr + nbytes, size - nbytes)
                return addr
        if self._cursor + nbytes > self.base + self.limit_bytes:
            raise OutOfMemoryError(
                f"heap limit {self.limit_bytes} bytes exceeded"
            )
        addr = self._cursor
        self._cursor += nbytes
        return addr

    def _admit(self, obj, nbytes: int) -> None:
        self.objects[obj.addr] = obj
        self._sizes[obj.addr] = self._align(max(nbytes, self.ALIGN))
        self.stats.allocations += 1
        self.stats.allocated_bytes += nbytes
        self.stats.live_bytes += nbytes
        self.stats.peak_live_bytes = max(
            self.stats.peak_live_bytes, self.stats.live_bytes
        )

    def _alloc_with_gc(self, nbytes: int) -> int:
        try:
            return self._reserve(nbytes)
        except OutOfMemoryError:
            self.collect()
            return self._reserve(nbytes)

    def new_object(self, jclass: JClass) -> JObject:
        probe = JObject(jclass, 0)
        size = probe.byte_size
        addr = self._alloc_with_gc(size)
        obj = JObject(jclass, addr)
        self._admit(obj, size)
        return obj

    def new_array(self, atype, length: int, ref_class: JClass | None = None) -> JArray:
        probe = JArray(atype, length, 0, ref_class)
        size = probe.byte_size
        addr = self._alloc_with_gc(size)
        arr = JArray(atype, length, addr, ref_class)
        self._admit(arr, size)
        return arr

    def new_string(self, value: str) -> JString:
        size = JString(value, 0).byte_size
        addr = self._alloc_with_gc(size)
        s = JString(value, addr)
        self._admit(s, size)
        return s

    # -- collection --------------------------------------------------------
    def collect(self) -> int:
        """Mark–sweep; returns bytes freed."""
        self.stats.gc_count += 1
        for obj in self.objects.values():
            obj.gc_mark = False

        roots = list(self.root_provider()) if self.root_provider else []
        stack = [r for r in roots if isinstance(r, HeapRef)]
        while stack:
            obj = stack.pop()
            if obj.gc_mark:
                continue
            obj.gc_mark = True
            if isinstance(obj, JObject):
                for value in obj.fields.values():
                    if isinstance(value, HeapRef) and not value.gc_mark:
                        stack.append(value)
            elif isinstance(obj, JArray) and obj.atype == "ref":
                for value in obj.data:
                    if isinstance(value, HeapRef) and not value.gc_mark:
                        stack.append(value)

        freed = 0
        dead = [a for a, o in self.objects.items() if not o.gc_mark]
        for addr in dead:
            size = self._sizes.pop(addr)
            del self.objects[addr]
            self._free.append((addr, size))
            freed += size
        self._coalesce()
        self.stats.live_bytes -= freed
        self.stats.gc_freed_bytes += freed
        if self.gc_listener:
            self.gc_listener(freed)
        return freed

    def _coalesce(self) -> None:
        """Merge adjacent free chunks."""
        if not self._free:
            return
        self._free.sort()
        merged = [self._free[0]]
        for addr, size in self._free[1:]:
            last_addr, last_size = merged[-1]
            if last_addr + last_size == addr:
                merged[-1] = (last_addr, last_size + size)
            else:
                merged.append((addr, size))
        self._free = merged

    # -- introspection ---------------------------------------------------------
    @property
    def live_object_count(self) -> int:
        return len(self.objects)

    @property
    def used_bytes(self) -> int:
        return self.stats.live_bytes

    def contains(self, addr: int) -> bool:
        return addr in self.objects
