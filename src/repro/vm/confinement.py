"""Runtime thread-confinement tracking (the cross-check oracle's eyes).

When ``JavaVM(track_confinement=True)``, allocation handlers tag every
bytecode-allocated object with ``(method, site, allocating thread)`` and
``monitor_enter`` reports each acquisition, so after a run we know which
allocation *sites* produced objects that a foreign thread locked.  A
static "safe to elide" claim (escape or concurrency analysis) for a
site observed here is a soundness bug — exactly what
``repro.fuzz.crosscheck`` hunts.

Field handlers additionally record which threads read/wrote each
(declaring class, field) location, giving the dynamic ground truth for
the race detector's precision statistic (racy-claimed but never
observed shared).

Everything installs by wrapping the interpreter's dispatch-table
entries, so the default (tracker off) costs nothing.
"""

from __future__ import annotations

from ..analysis.concurrency.callgraph import declaring_class
from ..isa.opcodes import Op


class ConfinementTracker:
    """Observes allocations, monitor entries, and field traffic."""

    def __init__(self, vm) -> None:
        self.vm = vm
        #: (qualified name, site) ever locked by any thread
        self.locked_sites: set[tuple] = set()
        #: (qualified name, site) locked by a non-allocating thread
        self.foreign_locked_sites: set[tuple] = set()
        #: (kind, class, field) -> (reader thread ids, writer thread ids)
        self._loc_threads: dict[tuple, tuple[set, set]] = {}
        self._decl_cache: dict[tuple, str] = {}

    # -- installation -------------------------------------------------------

    def install(self) -> None:
        handlers = self.vm.interp._handlers
        for op in (Op.NEW, Op.NEWARRAY, Op.ANEWARRAY):
            handlers[op] = self._wrap_alloc(handlers[op])
        for op, kind, write in ((Op.GETFIELD, "field", False),
                                (Op.PUTFIELD, "field", True),
                                (Op.GETSTATIC, "static", False),
                                (Op.PUTSTATIC, "static", True)):
            handlers[op] = self._wrap_field(handlers[op], kind, write)

    def _wrap_alloc(self, orig):
        def handler(thread, frame, instr):
            orig(thread, frame, instr)
            obj = frame.stack[-1] if frame.stack else None
            if obj is not None and hasattr(obj, "alloc_site"):
                obj.alloc_site = (frame.method.qualified_name,
                                  frame.ip - 1, thread.thread_id)
        return handler

    def _decl(self, class_name: str, field_name: str) -> str:
        key = (class_name, field_name)
        decl = self._decl_cache.get(key)
        if decl is None:
            decl = self._decl_cache[key] = declaring_class(
                self.vm.program, class_name, field_name)
        return decl

    def _wrap_field(self, orig, kind: str, write: bool):
        def handler(thread, frame, instr):
            ref = frame.method.pool[instr.a]
            loc = (kind, self._decl(ref.class_name, ref.field_name),
                   ref.field_name)
            threads = self._loc_threads.get(loc)
            if threads is None:
                threads = self._loc_threads[loc] = (set(), set())
            threads[1 if write else 0].add(thread.thread_id)
            orig(thread, frame, instr)
        return handler

    # -- monitor hook -------------------------------------------------------

    def note_enter(self, thread, obj) -> None:
        site = getattr(obj, "alloc_site", None)
        if site is None:
            return
        key = (site[0], site[1])
        self.locked_sites.add(key)
        if site[2] != thread.thread_id:
            self.foreign_locked_sites.add(key)

    # -- results ------------------------------------------------------------

    def shared_locations(self) -> set:
        """Locations written by one thread and touched by another."""
        out = set()
        for loc, (readers, writers) in self._loc_threads.items():
            if writers and len(readers | writers) >= 2:
                out.add(loc)
        return out
