"""Runtime object model: objects, arrays, strings.

Every runtime entity has a concrete simulated heap address so that the
trace layer can generate realistic data-reference streams.  The object
header is 8 bytes (class pointer + lock word), matching the layout the
paper's thin-lock discussion assumes.
"""

from __future__ import annotations

from ..isa.method import JClass
from ..isa.opcodes import ARRAY_ELEM_BYTES, ArrayType

#: Object header: 4-byte class pointer + 4-byte lock/hash word.
OBJECT_HEADER_BYTES = 8
#: Array header: object header + 4-byte length.
ARRAY_HEADER_BYTES = 12


class JObject:
    """An instance of a :class:`JClass`."""

    __slots__ = ("jclass", "fields", "addr", "lock", "gc_mark",
                 "tl_thread", "elide_depth", "tl_spec", "alloc_site")

    def __init__(self, jclass: JClass, addr: int) -> None:
        self.jclass = jclass
        self.addr = addr
        # Field storage keyed by name; offsets come from jclass.field_offsets.
        self.fields: dict[str, object] = {}
        for name, ftype in jclass.field_types.items():
            self.fields[name] = 0 if ftype != "ref" else None
        self.lock = None   # lazily attached LockState
        self.gc_mark = False
        # Lock elision: owning thread id when escape analysis proved the
        # allocation thread-local, plus a shadow recursion depth so the
        # elided region can still be classified and safely unwound.
        self.tl_thread = None
        self.elide_depth = 0
        # Tiered tier-2 speculation: (method_id, alloc site) when the
        # elision was speculative rather than proven, so a foreign touch
        # can repair and deoptimize instead of counting a violation.
        self.tl_spec = None
        # (method qualified name, site, allocating thread id) when the
        # confinement tracker is on; None otherwise.
        self.alloc_site = None

    @property
    def byte_size(self) -> int:
        return OBJECT_HEADER_BYTES + self.jclass.instance_bytes

    def field_addr(self, name: str) -> int:
        return self.addr + OBJECT_HEADER_BYTES + self.jclass.field_offsets[name]

    @property
    def lockword_addr(self) -> int:
        return self.addr + 4

    def __repr__(self) -> str:
        return f"<{self.jclass.name}@{self.addr:#x}>"


class JArray:
    """A Java array.  ``atype`` is an :class:`ArrayType` code for
    primitive arrays, or the string ``"ref"`` for reference arrays."""

    __slots__ = ("atype", "elem_bytes", "data", "addr", "lock", "gc_mark",
                 "ref_class", "tl_thread", "elide_depth", "tl_spec",
                 "alloc_site")

    def __init__(self, atype, length: int, addr: int, ref_class: JClass | None = None) -> None:
        if length < 0:
            raise ValueError("negative array size")
        self.atype = atype
        if atype == "ref":
            self.elem_bytes = 4
            default = None
        else:
            self.elem_bytes = ARRAY_ELEM_BYTES[ArrayType(atype)]
            default = 0 if ArrayType(atype) != ArrayType.FLOAT else 0.0
        self.data = [default] * length
        self.addr = addr
        self.ref_class = ref_class
        self.lock = None
        self.gc_mark = False
        self.tl_thread = None
        self.elide_depth = 0
        self.tl_spec = None
        self.alloc_site = None

    @property
    def length(self) -> int:
        return len(self.data)

    @property
    def byte_size(self) -> int:
        return ARRAY_HEADER_BYTES + self.elem_bytes * len(self.data)

    def elem_addr(self, index: int) -> int:
        return self.addr + ARRAY_HEADER_BYTES + self.elem_bytes * index

    @property
    def lockword_addr(self) -> int:
        return self.addr + 4

    def check(self, index: int) -> None:
        if not (0 <= index < len(self.data)):
            raise IndexError(
                f"array index {index} out of bounds for length {len(self.data)}"
            )

    def __repr__(self) -> str:
        return f"<array {self.atype}[{len(self.data)}]@{self.addr:#x}>"


class JString:
    """An immutable string object (interned per VM)."""

    __slots__ = ("value", "addr", "lock", "gc_mark")

    def __init__(self, value: str, addr: int) -> None:
        self.value = value
        self.addr = addr
        self.lock = None
        self.gc_mark = False

    @property
    def byte_size(self) -> int:
        return OBJECT_HEADER_BYTES + 4 + 2 * len(self.value)

    @property
    def lockword_addr(self) -> int:
        return self.addr + 4

    def data_addr(self, index: int = 0) -> int:
        return self.addr + OBJECT_HEADER_BYTES + 4 + 2 * index

    def __repr__(self) -> str:
        return f"<String {self.value!r}@{self.addr:#x}>"


#: Anything that can live on the heap / be synchronized on.
HeapRef = (JObject, JArray, JString)
