"""The Java virtual machine: scheduler, runtime services, results.

``JavaVM`` ties everything together: it loads a :class:`Program`
(linking in the runtime library), runs its ``main`` on a green-thread
scheduler, services allocation / synchronization / compilation requests
from the stepper, and produces a :class:`VMResult` with the cycle,
memory, synchronization and (optionally) full-trace observations that
the experiment harness consumes.
"""

from __future__ import annotations

from ..isa.method import Method, Program
from ..native.layout import WORD_BYTES
from ..native.trace import CountingSink, RecordingSink, Trace
from ..obs import TRACER
from ..sync.monitor_cache import MonitorCacheLockManager
from .classloader import ClassLoader
from .heap import Heap
from .interp_templates import shared_templates
from .interpreter import Interpreter, VMError
from .jit.compiler import CodeCache, JITCompiler
from .jit.inline import ClassHierarchy
from .objects import JObject, JString
from .profiler import Profiler
from .stubs import shared_stubs
from .strategy import CompileOnFirstUse, InterpretOnly, Strategy, TieredStrategy
from .threads import (
    BLOCKED,
    EMIT_COMPILED,
    EMIT_INTERP,
    EMIT_NONE,
    EMIT_OSR,
    FINISHED,
    JThread,
    RUNNABLE,
    WAITING,
)
from .tiering import TieredController


class DeadlockError(Exception):
    """All live threads are blocked on monitors/joins."""


class ExecutionLimitExceeded(Exception):
    """The bytecode budget ran out (runaway workload guard)."""


class VMResult:
    """Everything observed in one VM run."""

    def __init__(self, vm: "JavaVM") -> None:
        sink = vm.sink
        self.program_name = vm.program.name
        self.strategy = vm.strategy.name
        self.cycles = sink.cycles
        self.instructions = sink.instructions
        self.translate_cycles = sink.translate_cycles
        self.category_counts = sink.cat_counts.copy()
        self.bytecodes_executed = sum(t.bytecodes_executed for t in vm.threads)
        self.methods_compiled = vm.jit.methods_compiled
        self.methods_installed = vm.jit.methods_installed
        self.install_cycles = vm.jit.install_cycles_total
        self.archive = (vm.jit.archive.counters()
                        if vm.jit.archive is not None else None)
        self.inlined_sites = vm.jit.inlined_sites
        self.dead_stores_eliminated = vm.jit.dead_stores_eliminated
        self.spill_stores_eliminated = vm.jit.spill_stores_eliminated
        self.sync = vm.lock_manager.stats.snapshot()
        self.sync_cycles = vm.lock_manager.stats.cycles
        self.heap = vm.heap.stats.snapshot()
        self.profiles = vm.profiler.snapshot() if vm.profiler else {}
        self.strategy_config = vm.strategy.describe()
        self.tiering = vm.tiered.snapshot() if vm.tiered else None
        self.opcode_counts = vm.opcode_counts.copy()
        self.footprint = vm.footprint()
        self.stdout = list(vm.stdout)
        self.classes_loaded = vm.loader.classes_loaded
        if hasattr(sink, "flush"):
            sink.flush()
        self.folded_bytecodes = getattr(sink, "folded_bytecodes", 0)
        self.trace: Trace | None = (
            sink.trace() if getattr(sink, "records", False) else None
        )

    @property
    def execute_cycles(self) -> int:
        """Non-translate cycles (the 'execute' bar of Figure 1)."""
        return self.cycles - self.translate_cycles

    def __repr__(self) -> str:
        return (
            f"VMResult({self.program_name}/{self.strategy}, "
            f"cycles={self.cycles}, translate={self.translate_cycles}, "
            f"bytecodes={self.bytecodes_executed})"
        )


class JavaVM:
    """One virtual machine instance executing one program."""

    #: Sentinel a native method returns when it must block and retry.
    NATIVE_BLOCKED = object()

    def __init__(
        self,
        program: Program,
        strategy: Strategy | None = None,
        lock_manager=None,
        record: bool = False,
        heap_limit: int = 64 << 20,
        quantum: int = 60,
        profile: bool = True,
        inline: bool = True,
        max_bytecodes: int = 80_000_000,
        spawn_daemons: bool = True,
        folding: bool = False,
        jit_opt: bool = False,
        lock_elision: bool = False,
        static_concurrency: bool = False,
        track_confinement: bool = False,
        code_archive: str | None = None,
    ) -> None:
        from .library import ensure_library  # local import: cycle avoidance

        JThread.reset_ids()
        self.program = program
        ensure_library(program)
        self.strategy = strategy or CompileOnFirstUse()
        self.sink = RecordingSink() if record else CountingSink()
        self.stubs = shared_stubs()
        self.templates = shared_templates()
        self.folding = folding
        if folding:
            from .folding import FoldingSink
            self.sink = FoldingSink(self.sink, self.templates)
        self.loader = ClassLoader(program, self.stubs, self.sink)
        self.heap = Heap(limit_bytes=heap_limit)
        self.heap.root_provider = self._gc_roots
        self.lock_manager = lock_manager or MonitorCacheLockManager()
        self.hierarchy = ClassHierarchy(program)
        self.code_cache = CodeCache()
        self.jit = JITCompiler(self.loader, self.code_cache, self.sink,
                               self.hierarchy, inline=inline,
                               optimize=jit_opt)
        from .codecache_archive import CodeArchive, resolve_archive_dir
        archive_dir = resolve_archive_dir(code_archive)
        if archive_dir:
            self.jit.archive = CodeArchive(archive_dir)
        self.jit_opt = jit_opt
        self.lock_elision = lock_elision
        self._escape_summaries = None
        self._elision_plan: dict[int, frozenset] = {}
        # Static concurrency summaries (analysis.concurrency): safe sites
        # pre-seed tier-2 elision, racy sites are pre-blacklisted.
        self.static_concurrency = static_concurrency
        self._concurrency = None
        self._concurrency_plan: dict[int, tuple] = {}
        self.profiler = Profiler() if profile else None
        if isinstance(self.strategy, TieredStrategy):
            # Tiering is profile-driven: the controller needs invocation
            # and backedge counts regardless of the profile flag.
            if self.profiler is None:
                self.profiler = Profiler()
            self.tiered = TieredController(self, self.strategy)
            self.loader.on_load = self.tiered.on_class_loaded
        else:
            self.tiered = None
        self.interp = Interpreter(self)
        if track_confinement:
            from .confinement import ConfinementTracker
            self.confinement = ConfinementTracker(self)
            self.confinement.install()
        else:
            self.confinement = None
        self.quantum = quantum
        self.max_bytecodes = max_bytecodes
        self.spawn_daemons = spawn_daemons

        import numpy as _np
        from ..isa.opcodes import N_OPCODES as _N_OPS
        #: dynamic bytecode-frequency histogram (locality studies)
        self.opcode_counts = _np.zeros(_N_OPS, dtype=_np.int64)
        self.threads: list[JThread] = []
        self.stdout: list[str] = []
        # Per-emit-mode dispatch wall time / bytecode counts, filled by
        # the traced stepper (observability only; empty when tracing is
        # off).  Indexed by EMIT_NONE / EMIT_INTERP / EMIT_COMPILED /
        # EMIT_OSR.
        self.dispatch_seconds = [0.0, 0.0, 0.0, 0.0]
        self.dispatch_counts = [0, 0, 0, 0]
        # External request dispatcher (repro.traffic): an object with
        # poll/complete natives hooks and an ``on_idle(vm)`` callback the
        # scheduler consults before declaring deadlock — lets open-loop
        # arrival schedules advance the cycle clock while every worker
        # is parked waiting for load.
        self.request_source = None
        self._interned: dict[str, JString] = {}
        # java/lang/Thread instance -> JThread, maintained at thread
        # creation (JObject is identity-hashed, so this is an identity
        # map).  thread_for sits on the join/isAlive sync path; a linear
        # scan over self.threads scales O(threads) per call.
        self._thread_by_obj: dict[JObject, JThread] = {}
        self._compiled: dict[int, object] = {}   # method_id -> CompiledMethod
        self._translate_overhead = 0
        self._booted = False
        self._finished = False

    # ------------------------------------------------------------------
    # overhead accounting (excluded from per-method attribution)
    # ------------------------------------------------------------------
    @property
    def overhead_cycles(self) -> int:
        return self._translate_overhead + self.loader.overhead_cycles

    # ------------------------------------------------------------------
    # boot and scheduling
    # ------------------------------------------------------------------
    def boot(self) -> None:
        if self._booted:
            return
        self._booted = True
        from .library import boot_library
        self.object_class = self.loader.ensure_loaded("java/lang/Object")
        self.string_class = self.loader.ensure_loaded("java/lang/String")
        boot_library(self)
        self.loader.ensure_loaded(self.program.main_class)

        main_thread = JThread("main")
        self.threads.append(main_thread)
        main = self.program.entry_method
        if main.is_native or not main.is_static:
            raise VMError("main must be a static bytecode method")
        self._push_entry(main_thread, main)

        if self.spawn_daemons and "repro/Finalizer" in self.program.classes:
            for name in ("repro/Finalizer", "repro/RefCleaner"):
                cls = self.loader.ensure_loaded(name)
                obj = self.heap.new_object(cls)
                t = JThread(name.split("/")[-1].lower(), daemon=True)
                t.java_obj = obj
                self._thread_by_obj[obj] = t
                run = cls.find_method("run")
                self.threads.append(t)
                if self.profiler:
                    self.profiler.count_invocation(run)
                frame = t.push_frame(run)
                frame.locals[0] = obj
                self._set_entry_mode(frame, run)

    def _push_entry(self, thread: JThread, method: Method, receiver=None):
        if self.profiler:
            self.profiler.count_invocation(method)
        frame = thread.push_frame(method)
        if receiver is not None:
            frame.locals[0] = receiver
        self._set_entry_mode(frame, method)
        return frame

    def _set_entry_mode(self, frame, method) -> None:
        if self.profiler:
            frame.profile = self.profiler.profile_for(method)
        compiled = self.prepare_method(method, count=False)
        if compiled is not None:
            frame.emit_mode = EMIT_COMPILED
            frame.chunks = compiled.chunks
            frame.compiled = compiled
            compiled.prologue.emit(self.sink, frame)
        else:
            frame.emit_mode = EMIT_INTERP
        frame.return_pc = self.templates.dispatch_pc

    def run(self, max_bytecodes: int | None = None) -> VMResult:
        """Execute to completion and return the results.

        With the tracer on, the run is wrapped in a ``vm.run`` span and
        the stepper's per-emit-mode wall times are emitted as the
        ``vm.interp.dispatch`` / ``vm.jit.execute`` phase spans
        (``vm.jit.translate`` spans come from the compiler), mirroring
        the paper's Figure 1 translate-vs-execute split.
        """
        if not TRACER.enabled:
            return self._run(max_bytecodes)
        with TRACER.span("vm.run", program=self.program.name,
                         strategy=self.strategy.name) as sp:
            result = self._run(max_bytecodes)
            seconds, counts = self.dispatch_seconds, self.dispatch_counts
            TRACER.emit("vm.interp.dispatch", seconds[EMIT_INTERP],
                        bytecodes=counts[EMIT_INTERP])
            TRACER.emit("vm.jit.execute",
                        seconds[EMIT_COMPILED] + seconds[EMIT_NONE]
                        + seconds[EMIT_OSR],
                        bytecodes=counts[EMIT_COMPILED] + counts[EMIT_NONE]
                        + counts[EMIT_OSR])
            sp.attrs.update(
                cycles=result.cycles,
                translate_cycles=result.translate_cycles,
                execute_cycles=result.execute_cycles,
                bytecodes=result.bytecodes_executed,
                methods_compiled=result.methods_compiled,
                methods_installed=result.methods_installed,
                install_cycles=result.install_cycles,
            )
            if self.request_source is not None:
                sp.attrs.update(
                    requests_completed=getattr(
                        self.request_source, "completed", 0),
                    idle_cycles=getattr(
                        self.request_source, "idle_cycles", 0),
                )
            if self.tiered is not None:
                counters = self.tiered.counters()
                sp.attrs.update(counters)
                # Also bump the global counter stream: `repro.obs diff`
                # compares counters across runs, so tier transitions
                # become first-class diffable quantities.
                for name, value in counters.items():
                    TRACER.add(f"vm.tiered.{name}", value)
        return result

    def _run(self, max_bytecodes: int | None = None) -> VMResult:
        self.boot()
        budget = max_bytecodes or self.max_bytecodes
        executed_total = 0
        while True:
            runnable = [t for t in self.threads if t.state == RUNNABLE]
            if not runnable:
                live = [t for t in self.threads if t.state != FINISHED]
                if not live or all(t.daemon for t in live):
                    break
                if (self.request_source is not None
                        and self.request_source.on_idle(self)):
                    continue
                raise DeadlockError(
                    f"all threads blocked: "
                    f"{[(t.name, t.state) for t in live]}"
                )
            quantum = self.quantum if len(runnable) > 1 else 100_000
            for thread in runnable:
                if thread.state != RUNNABLE:
                    continue
                executed_total += self.interp.step(thread, quantum)
                if executed_total > budget:
                    raise ExecutionLimitExceeded(
                        f"{executed_total} bytecodes exceed the budget {budget}"
                    )
        self._finished = True
        return VMResult(self)

    def finish_thread(self, thread: JThread) -> None:
        thread.state = FINISHED
        for waiter in thread.joined_by:
            if waiter.state == WAITING:
                waiter.state = RUNNABLE
        thread.joined_by.clear()

    def spawn_thread(self, java_obj: JObject) -> JThread:
        """Implements Thread.start()."""
        run = java_obj.jclass.find_method("run")
        if run is None or run.is_native:
            raise VMError(f"{java_obj.jclass.name} has no bytecode run()")
        thread = JThread(java_obj.jclass.name)
        thread.java_obj = java_obj
        self._thread_by_obj[java_obj] = thread
        java_obj.fields["_tid"] = thread.thread_id
        self.threads.append(thread)
        frame = thread.push_frame(run)
        frame.locals[0] = java_obj
        if self.profiler:
            self.profiler.count_invocation(run)
        self._set_entry_mode(frame, run)
        return thread

    def thread_for(self, java_obj: JObject) -> JThread | None:
        return self._thread_by_obj.get(java_obj)

    # ------------------------------------------------------------------
    # compilation service
    # ------------------------------------------------------------------
    def prepare_method(self, method: Method, count: bool = True):
        """Count the invocation and compile if the strategy says so.

        Returns the :class:`CompiledMethod` if the method is (now)
        compiled, else ``None``.
        """
        n = self.profiler.count_invocation(method) if (
            self.profiler and count
        ) else 1
        if self.tiered is not None and not method.is_native:
            return self.tiered.on_invoke(method)
        compiled = self._compiled.get(method.method_id)
        if compiled is not None:
            return compiled
        if method.is_native:
            return None
        if self.strategy.should_compile(method, n):
            compiled = self.jit.compile(method)
            self._compiled[method.method_id] = compiled
            self._account_translation(method, compiled)
            return compiled
        return None

    def _account_translation(self, method: Method, compiled) -> None:
        """Single choke point for translate/install charging.  The
        strategy-compile path, the tiered promotion path, and the
        archive-install path all account here, so the Figure 1
        translate/execute split cannot drift between modes."""
        self._translate_overhead += compiled.translate_cycles
        if self.profiler:
            self.profiler.note_translate(method, compiled.translate_cycles,
                                         installed=compiled.from_archive)

    # ------------------------------------------------------------------
    # lock elision (escape analysis)
    # ------------------------------------------------------------------
    def elidable_sites(self, method: Method) -> frozenset:
        """Alloc-site indices in ``method`` proven non-escaping."""
        sites = self._elision_plan.get(method.method_id)
        if sites is None:
            if self._escape_summaries is None:
                from ..analysis.dataflow.escape import EscapeSummaries
                self._escape_summaries = EscapeSummaries(self.program)
            info = self._escape_summaries.info(method)
            sites = info.elidable_allocs if info is not None else frozenset()
            self._elision_plan[method.method_id] = sites
        return sites

    def concurrency_plan(self, method: Method) -> tuple:
        """``(safe, racy)`` alloc-site sets from the concurrency analysis.

        ``safe`` sites are elidable with no deopt risk (every thread that
        can lock instances of the allocated class is the allocating
        thread); ``racy`` sites are pre-blacklisted for speculation.
        """
        plan = self._concurrency_plan.get(method.method_id)
        if plan is None:
            if self._concurrency is None:
                from ..analysis.concurrency import ConcurrencyAnalysis
                if self._escape_summaries is None:
                    from ..analysis.dataflow.escape import EscapeSummaries
                    self._escape_summaries = EscapeSummaries(self.program)
                self._concurrency = ConcurrencyAnalysis(
                    self.program, escape=self._escape_summaries)
            plan = (self._concurrency.safe_sites(method),
                    self._concurrency.racy_sites(method))
            self._concurrency_plan[method.method_id] = plan
        return plan

    # ------------------------------------------------------------------
    # synchronization service
    # ------------------------------------------------------------------
    def monitor_enter(self, thread: JThread, obj) -> bool:
        if self.confinement is not None:
            self.confinement.note_enter(thread, obj)
        tl = getattr(obj, "tl_thread", None)
        if tl is not None:
            stats = self.lock_manager.stats
            if tl == thread.thread_id:
                # Escape analysis proved the object thread-local: skip
                # the lock manager entirely.  The shadow depth lets us
                # classify what the acquisition would have been.
                from ..sync.base import RECURSION_LIMIT
                if obj.elide_depth == 0:
                    case = "a"
                elif obj.elide_depth < RECURSION_LIMIT:
                    case = "b"
                else:
                    case = "c"
                obj.elide_depth += 1
                stats.elided_acquires += 1
                stats.elided_case_counts[case] += 1
                return True
            # A foreign thread reached a thread-local-marked object.
            if getattr(obj, "tl_spec", None) is not None \
                    and self.tiered is not None:
                # Tier-2 *speculative* elision: repair the elided region
                # (replay it through the lock manager on the owner's
                # behalf) and deoptimize the allocating method, then
                # lock normally below — no violation is recorded.
                self.tiered.on_foreign_touch(obj)
            elif obj.elide_depth > 0:
                # Mid-region: the analysis was unsound for this object.
                # Keep the marking so the eliding owner's enter/exit
                # pairing stays consistent; record the violation.
                stats.elision_violations += 1
            else:
                obj.tl_thread = None   # demote to normal locking
        acquired, _case = self.lock_manager.acquire(
            thread.thread_id, obj, self.sink
        )
        if not acquired:
            thread.state = BLOCKED
            thread.blocked_on = obj
        return acquired

    def monitor_exit(self, thread: JThread, obj) -> None:
        if getattr(obj, "tl_thread", None) == thread.thread_id \
                and obj.elide_depth > 0:
            obj.elide_depth -= 1
            self.lock_manager.stats.elided_releases += 1
            return
        self.lock_manager.release(thread.thread_id, obj, self.sink)
        if obj.lock is not None and obj.lock.count == 0:
            for t in self.threads:
                if t.state == BLOCKED and t.blocked_on is obj:
                    t.state = RUNNABLE
                    t.blocked_on = None

    # ------------------------------------------------------------------
    # heap / string services
    # ------------------------------------------------------------------
    def intern_string(self, value: str) -> JString:
        s = self._interned.get(value)
        if s is None:
            s = self.heap.new_string(value)
            self._interned[value] = s
        return s

    def _gc_roots(self):
        for thread in self.threads:
            for frame in thread.frames:
                yield from frame.stack
                yield from frame.locals
            if thread.java_obj is not None:
                yield thread.java_obj
        for cls in self.program.classes.values():
            if cls.loaded:
                yield from cls.statics.values()
        yield from self._interned.values()

    # ------------------------------------------------------------------
    # memory footprint (Table 1)
    # ------------------------------------------------------------------
    def footprint(self) -> dict:
        """Byte sizes of the runtime's memory components."""
        stack_bytes = sum(
            sum(f.size_bytes for f in t.frames) for t in self.threads
        )
        # Peak stack use is better approximated by frames high-water; use
        # a simple proxy: deepest live frames + per-thread minimum.
        components = {
            "vm_metadata": self.loader.metadata_bytes,
            "bytecode": self.loader.bytecode_bytes,
            "heap_peak": self.heap.stats.peak_live_bytes,
            "stacks": max(stack_bytes, 2048 * max(1, len(self.threads))),
            "interp_text": self.templates.text_bytes,
            "vm_text": self.stubs.text_bytes,
            "jumptable": 4 * 220,
            "code_cache": self.code_cache.used_bytes,
            "jit_text": (self.jit.stubs.text_bytes
                         if self.jit.methods_compiled
                         or self.jit.methods_installed else 0),
            "jit_work": self.jit.peak_work_bytes,
        }
        components["interpreter_total"] = (
            components["vm_metadata"] + components["bytecode"]
            + components["heap_peak"] + components["stacks"]
            + components["interp_text"] + components["vm_text"]
            + components["jumptable"]
        )
        # The translator's text is part of the VM binary (as the
        # interpreter's text is); the *per-application* JIT overhead is
        # the installed code plus the compiler's working storage.
        components["jit_total"] = (
            components["interpreter_total"] + components["code_cache"]
            + components["jit_work"]
        )
        return components
