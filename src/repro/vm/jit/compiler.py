"""The JIT compiler: bytecode -> native chunks.

A template-style compiler in the spirit of Kaffe's JIT: operand-stack
slots and locals are mapped onto fixed machine registers (spilling to
the frame when the windows overflow), each bytecode becomes a short
native chunk, conditional branches resolve to chunk pcs, and
monomorphic tiny calls are inlined after class-hierarchy analysis.

Compilation also *charges itself to the trace*: the translator's driver
/ generator / install-store templates are emitted for every bytecode
translated, producing the translate-portion footprint (including the
code-cache write misses) that Section 4.3 of the paper studies.
"""

from __future__ import annotations

from ...isa.method import Method
from ...isa.opcodes import Op, OPINFO
from ...native.layout import CODE_CACHE_BASE, CODE_CACHE_SIZE, TextRegion
from ...native.nisa import NCat, NO_REG, REG_ARG0, REG_RETVAL, REG_TMP0, REG_TMP1
from ...native.template import TemplateBuilder
from ...obs import TRACER
from ..objects import ARRAY_HEADER_BYTES, OBJECT_HEADER_BYTES
from ..threads import FRAME_HEADER_BYTES
from .chunks import Chunk, CompiledMethod, InlineSite
from .inline import ClassHierarchy, inline_field_offsets, is_inlinable
from .translate_stubs import shared_translate_stubs

#: Registers available for operand-stack slots.
STACK_REG_BASE, N_STACK_REGS = 12, 12
#: Registers available for locals.
LOCAL_REG_BASE, N_LOCAL_REGS = 24, 8

#: Float-flavoured opcodes (generated as FPU categories).
_FCATS = {
    Op.FADD: NCat.FALU, Op.FSUB: NCat.FALU, Op.FMUL: NCat.FMUL,
    Op.FDIV: NCat.FDIV, Op.FNEG: NCat.FALU, Op.I2F: NCat.FALU,
    Op.F2I: NCat.FALU, Op.FCMPL: NCat.FALU, Op.FCMPG: NCat.FALU,
}
_ICATS = {Op.IMUL: NCat.IMUL, Op.IDIV: NCat.IDIV, Op.IREM: NCat.IDIV}


class _Proto:
    """One not-yet-materialized native instruction."""

    __slots__ = ("cat", "dst", "src1", "src2", "ea", "taken", "target")

    def __init__(self, cat, dst=NO_REG, src1=NO_REG, src2=NO_REG,
                 ea=None, taken=None, target=None) -> None:
        self.cat = cat
        self.dst = dst
        self.src1 = src1
        self.src2 = src2
        self.ea = ea          # None | ("abs", a) | ("frame", off) | "dyn"
        self.taken = taken    # None | bool | "dyn"
        self.target = target  # None | ("abs", pc) | ("chunk", i) | "dyn"


class CodeCache:
    """Per-VM code cache; tracks installed bytes for the footprint study."""

    def __init__(self) -> None:
        self.region = TextRegion(CODE_CACHE_BASE, CODE_CACHE_SIZE, "code_cache")
        self.installed: dict[int, CompiledMethod] = {}

    @property
    def used_bytes(self) -> int:
        return self.region.used_bytes

    def install(self, compiled: CompiledMethod) -> None:
        self.installed[compiled.method.method_id] = compiled


class JITCompiler:
    """Compiles methods for one VM instance."""

    def __init__(self, loader, code_cache: CodeCache, sink,
                 hierarchy: ClassHierarchy, inline: bool = True,
                 optimize: bool = False) -> None:
        self.loader = loader
        self.code_cache = code_cache
        self.sink = sink
        self.hierarchy = hierarchy
        self.inline_enabled = inline
        self.optimize_enabled = optimize
        self.stubs = shared_translate_stubs()
        #: shared compiled-code archive (repro.vm.codecache_archive),
        #: attached by the VM when REPRO_CODE_ARCHIVE / code_archive is set
        self.archive = None
        self.methods_installed = 0
        self.install_cycles_total = 0
        self.methods_compiled = 0
        self.bytecodes_compiled = 0
        self.native_instructions_emitted = 0
        self.inlined_sites = 0
        self.peak_work_bytes = 0
        self.dead_stores_eliminated = 0
        self.spill_stores_eliminated = 0
        self._skip_spill = False
        # Per-compile tiering state (reset by compile()).
        self._opt_override: bool | None = None
        self._speculate_cha = False
        self._cha_blacklist: frozenset = frozenset()
        self._assumptions: list = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def compile(self, method: Method, tier: int = 0,
                optimize: bool | None = None,
                speculate_cha: bool = False,
                cha_blacklist: frozenset = frozenset()) -> CompiledMethod:
        """Translate one method, charge the work to the trace, install.

        The tiered engine parameterizes each translation: ``optimize``
        overrides the VM-wide flag (tier 1 compiles baseline code even
        in an optimizing VM; tier 2 always optimizes), ``speculate_cha``
        lets devirtualization use loaded-world CHA (recorded as
        assumptions on the :class:`CompiledMethod` for invalidation),
        and ``cha_blacklist`` names call targets whose speculation
        already failed once.

        With the tracer on, each translation is a ``vm.jit.translate``
        span — the wall-clock counterpart of the simulated
        translate-cycles the paper's Figure 1 accounts for.
        """
        self._opt_override = optimize
        self._speculate_cha = speculate_cha
        self._cha_blacklist = cha_blacklist
        self._assumptions = []
        try:
            entry = None
            if self.archive is not None:
                # Addressing the archive performs the same resolutions,
                # in the same order, that translation would — on hits
                # *and* misses — so archive-enabled runs stay
                # cycle-identical outside the translate/install split.
                entry = self.archive.entry_for(
                    self, method, tier=tier, optimize=optimize,
                    speculate_cha=speculate_cha,
                    cha_blacklist=cha_blacklist)
                archived = self.archive.load(entry, method, self)
                if archived is not None:
                    return self._install_archived(archived, method, tier)
            if not TRACER.enabled:
                compiled = self._translate(method)
            else:
                with TRACER.span("vm.jit.translate",
                                 method=method.qualified_name,
                                 tier=tier) as sp:
                    compiled = self._translate(method)
                    sp.attrs["translate_cycles"] = compiled.translate_cycles
                    sp.attrs["bytecodes"] = len(method.code)
            compiled.tier = tier
            compiled.assumptions = tuple(self._assumptions)
            if entry is not None:
                self.archive.store(entry, compiled)
            return compiled
        finally:
            self._opt_override = None
            self._speculate_cha = False
            self._cha_blacklist = frozenset()
            self._assumptions = []

    def _install_archived(self, compiled: CompiledMethod, method: Method,
                          tier: int) -> CompiledMethod:
        """Finish an archive hit: charge the install-path cycles (the
        cheap subset of the translate portion) and install the body."""
        if not TRACER.enabled:
            cycles = self.stubs.emit_install(self.sink, compiled)
        else:
            with TRACER.span("vm.jit.install",
                             method=method.qualified_name, tier=tier) as sp:
                cycles = self.stubs.emit_install(self.sink, compiled)
                sp.attrs["install_cycles"] = cycles
                sp.attrs["bytecodes"] = len(method.code)
        compiled.tier = tier
        compiled.translate_cycles = cycles
        compiled.install_cycles = cycles
        compiled.from_archive = True
        self.code_cache.install(compiled)
        self.methods_installed += 1
        self.install_cycles_total += cycles
        self.inlined_sites += len(compiled.inline_info)
        return compiled

    def _translate(self, method: Method) -> CompiledMethod:
        assert not method.is_native, "native methods are never JIT-compiled"
        dead, pop_only = frozenset(), frozenset()
        optimize = (self.optimize_enabled if self._opt_override is None
                    else self._opt_override)
        if optimize:
            # Liveness-driven DSE: stores whose local is never read again
            # and pushes only ever consumed by POP produce no native code.
            # Execution semantics live in the interpreter's handlers, so
            # this only shrinks the compiled-code cost model and trace.
            from ...analysis.dataflow.liveness import (
                dead_stores, pop_only_pushes)
            dead = frozenset(dead_stores(method))
            pop_only = pop_only_pushes(method)
        protos_per_index: list[list[_Proto]] = []
        inline_info: dict[int, InlineSite] = {}
        for idx, instr in enumerate(method.code):
            depth = method.depth_in[idx]
            if depth < 0:      # unreachable instruction: no code
                protos_per_index.append([])
                continue
            if idx in dead:
                # Dead store_local/iinc: a pure register-mapping change,
                # exactly like POP.
                self.dead_stores_eliminated += 1
                protos_per_index.append([])
                continue
            self._skip_spill = idx in pop_only
            protos = self._gen_instr(method, idx, instr, depth, inline_info)
            self._skip_spill = False
            if protos:
                protos = self._codegen_overhead(idx) + protos
            protos_per_index.append(protos)

        prologue_protos = [
            _Proto(NCat.STORE, src1=REG_ARG0, ea=("frame", 0)),
            _Proto(NCat.STORE, src1=REG_ARG0, ea=("frame", 4)),
            _Proto(NCat.IALU, dst=REG_TMP0, src1=REG_ARG0),
            _Proto(NCat.IALU, dst=REG_TMP1, src1=REG_TMP0),
        ]

        # Layout: prologue, then chunks in bytecode order, then any
        # embedded switch tables.
        counts = [len(prologue_protos)] + [len(p) for p in protos_per_index]
        total = sum(counts)
        n_table_words = sum(
            len(i.branch_targets()) for i in method.code
            if OPINFO[i.op].kind == "switch"
        )
        entry_pc = self.code_cache.region.alloc(total + n_table_words)
        # pc of each bytecode index's chunk.
        chunk_pcs: list[int] = []
        cursor = entry_pc + 4 * len(prologue_protos)
        for protos in protos_per_index:
            chunk_pcs.append(cursor)
            cursor += 4 * len(protos)
        end_pc = cursor + 4 * n_table_words

        # Fix switch-table load addresses now that the layout is known.
        table_cursor = cursor
        for idx, instr in enumerate(method.code):
            if OPINFO[instr.op].kind != "switch":
                continue
            for proto in protos_per_index[idx]:
                if proto.ea == "table":
                    proto.ea = ("abs", table_cursor)
            table_cursor += 4 * len(instr.branch_targets())

        prologue = self._materialize(
            f"{method.qualified_name}:prologue", prologue_protos,
            entry_pc, chunk_pcs,
        )
        chunks: list[Chunk | None] = []
        for idx, protos in enumerate(protos_per_index):
            if not protos:
                chunks.append(None)
                continue
            name = f"{method.qualified_name}@{idx}:{method.code[idx].info.mnemonic}"
            chunks.append(self._materialize(name, protos, chunk_pcs[idx], chunk_pcs))

        compiled = CompiledMethod(
            method, chunks, prologue, entry_pc, end_pc, inline_info
        )
        install_pcs = [
            [chunk_pcs[i] + 4 * k for k in range(len(p))]
            for i, p in enumerate(protos_per_index)
        ]
        if install_pcs:
            # the prologue is generated/installed with the first chunk
            install_pcs[0] = [
                entry_pc + 4 * k for k in range(len(prologue_protos))
            ] + install_pcs[0]
        compiled.translate_cycles = self.stubs.emit_translation(
            self.sink, method, install_pcs
        )
        self.code_cache.install(compiled)
        self.methods_compiled += 1
        self.bytecodes_compiled += len(method.code)
        self.native_instructions_emitted += total
        self.peak_work_bytes = max(self.peak_work_bytes, 24 * len(method.code))
        return compiled

    @staticmethod
    def _codegen_overhead(idx: int) -> list[_Proto]:
        """Per-bytecode overhead of Kaffe-class template code generation.

        A naive template JIT re-materializes operand state and address
        bases around every bytecode's code: a reload from the frame's
        spill area plus addressing arithmetic.  This is what makes
        1998-era compiled Java code several-fold denser than the
        interpreter rather than an order of magnitude (the paper's [27]
        measures ~25 generated SPARC instructions per bytecode for the
        whole translation unit).
        """
        return [
            _Proto(NCat.LOAD, dst=REG_TMP1,
                   ea=("frame", FRAME_HEADER_BYTES + 4 * (idx % 4))),
            _Proto(NCat.IALU, dst=REG_TMP0, src1=REG_TMP1),
            _Proto(NCat.IALU, dst=REG_TMP1, src1=REG_TMP0),
            _Proto(NCat.IALU, dst=REG_TMP0, src1=REG_TMP1),
        ]

    # ------------------------------------------------------------------
    # register mapping
    # ------------------------------------------------------------------
    @staticmethod
    def _sreg(slot: int) -> int | None:
        return STACK_REG_BASE + slot if slot < N_STACK_REGS else None

    @staticmethod
    def _lreg(index: int) -> int | None:
        return LOCAL_REG_BASE + index if index < N_LOCAL_REGS else None

    @staticmethod
    def _stack_off(method: Method, slot: int) -> int:
        return FRAME_HEADER_BYTES + 4 * (method.max_locals + slot)

    @staticmethod
    def _local_off(index: int) -> int:
        return FRAME_HEADER_BYTES + 4 * index

    def _use(self, method, slot, scratch, out) -> int:
        """Register holding stack slot ``slot``; loads spills into scratch."""
        reg = self._sreg(slot)
        if reg is not None:
            return reg
        out.append(_Proto(NCat.LOAD, dst=scratch,
                          ea=("frame", self._stack_off(method, slot))))
        return scratch

    def _def(self, method, slot, value_reg, out) -> None:
        """Spill-store if the destination slot has no register."""
        if self._sreg(slot) is None:
            if self._skip_spill:
                # Stack-liveness: every consumer of this push is a POP,
                # so the spilled value would never be reloaded.
                self.spill_stores_eliminated += 1
                return
            out.append(_Proto(NCat.STORE, src1=value_reg,
                              ea=("frame", self._stack_off(method, slot))))

    def _dst(self, slot: int) -> int:
        reg = self._sreg(slot)
        return reg if reg is not None else REG_TMP0

    # ------------------------------------------------------------------
    # per-opcode generation
    # ------------------------------------------------------------------
    def _gen_instr(self, method, idx, instr, depth, inline_info) -> list[_Proto]:
        op = instr.op
        kind = OPINFO[op].kind
        out: list[_Proto] = []
        d = depth

        if kind == "const":
            rd = self._dst(d)
            n = 2 if op is Op.LDC else 1
            cat = NCat.FALU if op is Op.FCONST else NCat.IALU
            for _ in range(n):
                out.append(_Proto(cat, dst=rd))
            self._def(method, d, rd, out)

        elif kind == "load_local":
            lr = self._lreg(instr.a)
            rd = self._dst(d)
            if lr is not None:
                out.append(_Proto(NCat.IALU, dst=rd, src1=lr))
            else:
                out.append(_Proto(NCat.LOAD, dst=rd,
                                  ea=("frame", self._local_off(instr.a))))
            self._def(method, d, rd, out)

        elif kind == "store_local":
            rs = self._use(method, d - 1, REG_TMP0, out)
            lr = self._lreg(instr.a)
            if lr is not None:
                out.append(_Proto(NCat.IALU, dst=lr, src1=rs))
            else:
                out.append(_Proto(NCat.STORE, src1=rs,
                                  ea=("frame", self._local_off(instr.a))))

        elif kind == "iinc":
            lr = self._lreg(instr.a)
            if lr is not None:
                out.append(_Proto(NCat.IALU, dst=lr, src1=lr))
            else:
                off = self._local_off(instr.a)
                out.append(_Proto(NCat.LOAD, dst=REG_TMP0, ea=("frame", off)))
                out.append(_Proto(NCat.IALU, dst=REG_TMP0, src1=REG_TMP0))
                out.append(_Proto(NCat.STORE, src1=REG_TMP0, ea=("frame", off)))

        elif kind == "stack":
            if op is Op.POP:
                pass  # purely a mapping change; no code
            elif op is Op.DUP:
                rs = self._use(method, d - 1, REG_TMP0, out)
                rd = self._dst(d)
                out.append(_Proto(NCat.IALU, dst=rd, src1=rs))
                self._def(method, d, rd, out)
            elif op is Op.DUP_X1:
                ra = self._use(method, d - 2, REG_TMP0, out)
                rb = self._use(method, d - 1, REG_TMP1, out)
                for dst_slot, src in ((d, rb), (d - 1, ra)):
                    rd = self._dst(dst_slot)
                    out.append(_Proto(NCat.IALU, dst=rd, src1=src))
                    self._def(method, dst_slot, rd, out)
                rd = self._dst(d - 2)
                out.append(_Proto(NCat.IALU, dst=rd, src1=rb))
                self._def(method, d - 2, rd, out)
            elif op is Op.SWAP:
                ra = self._use(method, d - 2, REG_TMP0, out)
                rb = self._use(method, d - 1, REG_TMP1, out)
                out.append(_Proto(NCat.IALU, dst=REG_TMP0, src1=ra))
                rd = self._dst(d - 2)
                out.append(_Proto(NCat.IALU, dst=rd, src1=rb))
                self._def(method, d - 2, rd, out)
                rd = self._dst(d - 1)
                out.append(_Proto(NCat.IALU, dst=rd, src1=REG_TMP0))
                self._def(method, d - 1, rd, out)

        elif kind == "binop":
            ra = self._use(method, d - 2, REG_TMP0, out)
            rb = self._use(method, d - 1, REG_TMP1, out)
            cat = _FCATS.get(op) or _ICATS.get(op) or NCat.IALU
            rd = self._dst(d - 2)
            out.append(_Proto(cat, dst=rd, src1=ra, src2=rb))
            if op in (Op.FCMPL, Op.FCMPG):
                out.append(_Proto(NCat.IALU, dst=rd, src1=rd))
            self._def(method, d - 2, rd, out)

        elif kind == "unop":
            ra = self._use(method, d - 1, REG_TMP0, out)
            cat = _FCATS.get(op, NCat.IALU)
            rd = self._dst(d - 1)
            out.append(_Proto(cat, dst=rd, src1=ra))
            self._def(method, d - 1, rd, out)

        elif kind == "branch":
            if op in (Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFGE, Op.IFGT, Op.IFLE,
                      Op.IFNULL, Op.IFNONNULL):
                ra = self._use(method, d - 1, REG_TMP0, out)
                out.append(_Proto(NCat.IALU, dst=REG_TMP0, src1=ra))
            else:
                ra = self._use(method, d - 2, REG_TMP0, out)
                rb = self._use(method, d - 1, REG_TMP1, out)
                out.append(_Proto(NCat.IALU, dst=REG_TMP0, src1=ra, src2=rb))
            out.append(_Proto(NCat.BRANCH, src1=REG_TMP0, taken="dyn",
                              target=("chunk", instr.a)))

        elif kind == "goto":
            out.append(_Proto(NCat.JUMP, target=("chunk", instr.a)))

        elif kind == "switch":
            ra = self._use(method, d - 1, REG_TMP0, out)
            out.append(_Proto(NCat.IALU, dst=REG_TMP0, src1=ra))
            out.append(_Proto(NCat.IALU, dst=REG_TMP0, src1=REG_TMP0))
            out.append(_Proto(NCat.LOAD, dst=REG_TMP1, src1=REG_TMP0, ea="table"))
            out.append(_Proto(NCat.IJUMP, src1=REG_TMP1, target="dyn"))

        elif kind == "return":
            if op is not Op.RETURN:
                ra = self._use(method, d - 1, REG_TMP0, out)
                out.append(_Proto(NCat.IALU, dst=REG_RETVAL, src1=ra))
            out.append(_Proto(NCat.IALU, dst=REG_TMP0, src1=REG_TMP0))
            out.append(_Proto(NCat.RET, target="dyn"))

        elif kind == "field":
            if op is Op.GETFIELD:
                self._use(method, d - 1, REG_TMP0, out)
                rd = self._dst(d - 1)
                out.append(_Proto(NCat.LOAD, dst=rd, ea="dyn"))
                self._def(method, d - 1, rd, out)
            elif op is Op.PUTFIELD:
                rv = self._use(method, d - 1, REG_TMP0, out)
                self._use(method, d - 2, REG_TMP1, out)
                out.append(_Proto(NCat.STORE, src1=rv, ea="dyn"))
            else:
                owner, fname = self.loader.resolve_field(method.jclass, instr.a)
                addr = owner.static_addr[fname]
                if op is Op.GETSTATIC:
                    rd = self._dst(d)
                    out.append(_Proto(NCat.LOAD, dst=rd, ea=("abs", addr)))
                    self._def(method, d, rd, out)
                else:
                    rv = self._use(method, d - 1, REG_TMP0, out)
                    out.append(_Proto(NCat.STORE, src1=rv, ea=("abs", addr)))

        elif kind == "invoke":
            site = self._try_inline(method, idx, instr, d)
            if site is not None:
                inline_info[idx] = site[0]
                out.extend(site[1])
                self.inlined_sites += 1
            else:
                ref = method.pool[instr.a]
                n_args = ref.argc + (0 if op is Op.INVOKESTATIC else 1)
                for k in range(min(n_args, 6)):
                    slot = d - n_args + k
                    rs = self._use(method, slot, REG_TMP0, out)
                    out.append(_Proto(NCat.IALU, dst=REG_ARG0 + (k % 3), src1=rs))
                if op is Op.INVOKEVIRTUAL:
                    out.append(_Proto(NCat.LOAD, dst=REG_TMP0, ea="dyn"))   # class
                    out.append(_Proto(NCat.LOAD, dst=REG_TMP1, src1=REG_TMP0,
                                      ea="dyn"))                             # vtable
                    out.append(_Proto(NCat.ICALL, src1=REG_TMP1, target="dyn"))
                else:
                    out.append(_Proto(NCat.CALL, target="dyn"))

        elif kind == "new":
            out.append(_Proto(NCat.IALU, dst=REG_ARG0))
            out.append(_Proto(NCat.CALL, target="dyn"))
            rd = self._dst(d if op is Op.NEW else d - 1)
            out.append(_Proto(NCat.IALU, dst=rd, src1=REG_RETVAL))
            self._def(method, d if op is Op.NEW else d - 1, rd, out)

        elif kind == "array":
            if op is Op.ARRAYLENGTH:
                self._use(method, d - 1, REG_TMP0, out)
                rd = self._dst(d - 1)
                out.append(_Proto(NCat.LOAD, dst=rd, ea="dyn"))
                self._def(method, d - 1, rd, out)
            elif op in (Op.IALOAD, Op.FALOAD, Op.AALOAD, Op.BALOAD, Op.CALOAD):
                ri = self._use(method, d - 1, REG_TMP0, out)
                ra = self._use(method, d - 2, REG_TMP1, out)
                out.append(_Proto(NCat.LOAD, dst=REG_TMP1, src1=ra, ea="dyn"))  # len
                out.append(_Proto(NCat.BRANCH, src1=REG_TMP1, taken=False,
                                  target=("abs", 0)))
                out.append(_Proto(NCat.IALU, dst=REG_TMP0, src1=ra, src2=ri))
                rd = self._dst(d - 2)
                out.append(_Proto(NCat.LOAD, dst=rd, src1=REG_TMP0, ea="dyn"))
                self._def(method, d - 2, rd, out)
            else:  # array stores
                rv = self._use(method, d - 1, REG_TMP0, out)
                ri = self._use(method, d - 2, REG_TMP1, out)
                ra = self._use(method, d - 3, REG_TMP1, out)
                out.append(_Proto(NCat.LOAD, dst=REG_TMP1, src1=ra, ea="dyn"))  # len
                out.append(_Proto(NCat.BRANCH, src1=REG_TMP1, taken=False,
                                  target=("abs", 0)))
                out.append(_Proto(NCat.IALU, dst=REG_TMP1, src1=ra, src2=ri))
                out.append(_Proto(NCat.STORE, src1=rv, src2=REG_TMP1, ea="dyn"))

        elif kind == "typecheck":
            self._use(method, d - 1, REG_TMP0, out)
            out.append(_Proto(NCat.LOAD, dst=REG_TMP1, ea="dyn"))  # class ptr
            out.append(_Proto(NCat.IALU, dst=REG_TMP1, src1=REG_TMP1))
            out.append(_Proto(NCat.BRANCH, src1=REG_TMP1, taken=False,
                              target=("abs", 0)))
            if op is Op.INSTANCEOF:
                rd = self._dst(d - 1)
                out.append(_Proto(NCat.IALU, dst=rd, src1=REG_TMP1))
                self._def(method, d - 1, rd, out)

        elif kind == "monitor":
            rs = self._use(method, d - 1, REG_TMP0, out)
            out.append(_Proto(NCat.IALU, dst=REG_ARG0, src1=rs))
            out.append(_Proto(NCat.CALL, target="dyn"))

        elif op is Op.NOP:
            pass

        else:  # pragma: no cover - exhaustiveness guard
            raise NotImplementedError(f"JIT cannot translate {op!r}")

        return out

    # ------------------------------------------------------------------
    # inlining
    # ------------------------------------------------------------------
    def _try_inline(self, method, idx, instr, depth):
        """Attempt to inline the call site; returns (InlineSite, protos)."""
        if not self.inline_enabled:
            return None
        # caller-side stack liveness does not describe the callee's slots
        self._skip_spill = False
        ref = method.pool[instr.a]
        op = instr.op
        speculative = False
        if op is Op.INVOKEVIRTUAL:
            target = self.hierarchy.unique_target(ref.class_name, ref.method_name)
            if (target is None and self._speculate_cha
                    and (ref.class_name, ref.method_name)
                    not in self._cha_blacklist):
                # Closed-world CHA sees several implementations, but only
                # one is loaded so far: devirtualize speculatively and
                # record the assumption.  Loading an overriding class
                # later triggers deoptimization of this method.
                target = self.hierarchy.unique_loaded_target(
                    ref.class_name, ref.method_name)
                speculative = target is not None
        else:
            try:
                target = self.loader.resolve_method(method.jclass, instr.a)
            except Exception:
                return None
        if target is None or not is_inlinable(target):
            return None
        offsets = inline_field_offsets(target, self.loader)
        if offsets is None:
            return None
        has_receiver = op is not Op.INVOKESTATIC
        if not has_receiver and offsets:
            return None  # field access needs a receiver

        n_args = ref.argc + (1 if has_receiver else 0)
        args_base = depth - n_args       # caller slot of first callee local
        protos: list[_Proto] = []
        dyn_offsets: list[int] = []

        # A tiny abstract interpreter over the callee, mapping callee
        # stack slot k -> caller slot (depth + k).
        def cslot(k: int) -> int:
            return depth + k

        sp = 0
        for c_instr in target.code:
            c_op = c_instr.op
            c_kind = OPINFO[c_op].kind
            if c_kind == "const":
                rd = self._dst(cslot(sp))
                protos.append(_Proto(
                    NCat.FALU if c_op is Op.FCONST else NCat.IALU, dst=rd))
                sp += 1
            elif c_kind == "load_local":
                src_slot = args_base + c_instr.a
                rs = self._use(method, src_slot, REG_TMP0, protos)
                rd = self._dst(cslot(sp))
                protos.append(_Proto(NCat.IALU, dst=rd, src1=rs))
                sp += 1
            elif c_kind == "store_local":
                sp -= 1  # store into an inlined temp: register rename only
            elif c_op is Op.GETFIELD:
                rd = self._dst(cslot(sp - 1))
                protos.append(_Proto(NCat.LOAD, dst=rd, ea="dyn"))
                dyn_offsets.append(OBJECT_HEADER_BYTES +
                                   self._inline_field_off(target, c_instr))
            elif c_op is Op.PUTFIELD:
                rv = self._use(method, cslot(sp - 1), REG_TMP0, protos)
                protos.append(_Proto(NCat.STORE, src1=rv, ea="dyn"))
                dyn_offsets.append(OBJECT_HEADER_BYTES +
                                   self._inline_field_off(target, c_instr))
                sp -= 2
            elif c_kind == "binop":
                ra = self._use(method, cslot(sp - 2), REG_TMP0, protos)
                rb = self._use(method, cslot(sp - 1), REG_TMP1, protos)
                cat = _FCATS.get(c_op) or _ICATS.get(c_op) or NCat.IALU
                rd = self._dst(cslot(sp - 2))
                protos.append(_Proto(cat, dst=rd, src1=ra, src2=rb))
                sp -= 1
            elif c_kind == "unop":
                ra = self._use(method, cslot(sp - 1), REG_TMP0, protos)
                rd = self._dst(cslot(sp - 1))
                protos.append(_Proto(_FCATS.get(c_op, NCat.IALU), dst=rd, src1=ra))
            elif c_op is Op.DUP:
                ra = self._use(method, cslot(sp - 1), REG_TMP0, protos)
                rd = self._dst(cslot(sp))
                protos.append(_Proto(NCat.IALU, dst=rd, src1=ra))
                sp += 1
            elif c_op is Op.POP:
                sp -= 1
            elif c_kind == "return":
                if c_op is not Op.RETURN:
                    rs = self._use(method, cslot(sp - 1), REG_TMP0, protos)
                    rd = self._dst(args_base)   # result replaces the args
                    protos.append(_Proto(NCat.IALU, dst=rd, src1=rs))
                    self._def(method, args_base, rd, protos)
                break
            elif c_op is Op.NOP:
                pass
            else:  # pragma: no cover - is_inlinable filters these out
                return None

        if speculative:
            self._assumptions.append(
                (ref.class_name, ref.method_name, target))
        return InlineSite(target, dyn_offsets), protos

    def _inline_field_off(self, target, c_instr) -> int:
        owner, fname = self.loader.resolve_field(target.jclass, c_instr.a)
        return owner.field_offsets[fname]

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def _materialize(self, name, protos, base_pc, chunk_pcs) -> Chunk:
        """Turn protos into a pc-resolved Template wrapped in a Chunk."""
        from ...native.template import PATCH

        b = TemplateBuilder(name)
        ea_plan: list[tuple[bool, int]] = []
        any_frame_rel = False
        for proto in protos:
            ea = proto.ea
            taken = proto.taken
            target = proto.target
            if ea == "dyn":
                ea_arg = PATCH
                ea_plan.append((False, 0))
            elif isinstance(ea, tuple) and ea[0] == "frame":
                ea_arg = PATCH
                ea_plan.append((True, ea[1]))
                any_frame_rel = True
            elif isinstance(ea, tuple) and ea[0] == "abs":
                ea_arg = ea[1]
            else:
                ea_arg = None

            taken_arg = PATCH if taken == "dyn" else taken
            if target == "dyn":
                target_arg = PATCH
            elif isinstance(target, tuple) and target[0] == "chunk":
                target_arg = chunk_pcs[target[1]]
            elif isinstance(target, tuple) and target[0] == "abs":
                target_arg = target[1]
            else:
                target_arg = None

            b.instr(proto.cat, dst=proto.dst, src1=proto.src1,
                    src2=proto.src2, ea=ea_arg, taken=taken_arg,
                    target=target_arg)
        template = b.build(base_pc=base_pc)
        return Chunk(template, ea_plan if any_frame_rel else None)
