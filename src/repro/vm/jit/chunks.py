"""Compiled-code chunks.

The JIT compiles each bytecode instruction into a short native *chunk*.
Executing a compiled method is driven by the semantic stepper: for every
bytecode it executes, the corresponding chunk is emitted into the trace
with the run-time values (heap addresses, branch outcomes, call targets)
patched in.  Spill slots are frame-relative and rebased per activation.
"""

from __future__ import annotations

from ..threads import Frame


class Chunk:
    """Native code for one bytecode instruction of a compiled method.

    ``ea_plan`` describes how to assemble the template's patched
    effective addresses: ``None`` means every patch slot is dynamic (the
    stepper passes them all); otherwise it is a sequence of
    ``(is_frame_relative, value)`` pairs where frame-relative entries
    are spill-slot offsets and the rest are filled from the dynamic
    values in order.
    """

    __slots__ = ("template", "ea_plan")

    def __init__(self, template, ea_plan=None) -> None:
        self.template = template
        self.ea_plan = ea_plan

    @property
    def base_pc(self) -> int:
        return self.template.base_pc

    def emit(self, sink, frame: Frame, dyn=(), takens=(), targets=()) -> None:
        plan = self.ea_plan
        if plan is None:
            sink.emit(self.template, dyn, takens, targets)
            return
        it = iter(dyn)
        base = frame.frame_base
        eas = [base + value if rel else next(it) for rel, value in plan]
        sink.emit(self.template, eas, takens, targets)

    def __repr__(self) -> str:
        return f"Chunk({self.template.name}, n={self.template.n})"


class CompiledMethod:
    """The installed native code of one method."""

    __slots__ = (
        "method",
        "chunks",
        "prologue",
        "entry_pc",
        "end_pc",
        "code_bytes",
        "inline_info",
        "translate_cycles",
        "install_cycles",
        "from_archive",
        "tier",
        "assumptions",
    )

    def __init__(self, method, chunks, prologue, entry_pc, end_pc,
                 inline_info=None) -> None:
        self.method = method
        self.chunks = chunks            # per-bytecode-index Chunk or None
        self.prologue = prologue        # Chunk emitted on entry
        self.entry_pc = entry_pc
        self.end_pc = end_pc
        self.code_bytes = end_pc - entry_pc
        #: instruction index -> InlineSite for inlined call sites
        self.inline_info = inline_info or {}
        self.translate_cycles = 0       # filled by the compiler
        #: install-path subset of translate_cycles (archive hits only)
        self.install_cycles = 0
        #: True when this body was installed from the shared code
        #: archive instead of translated here
        self.from_archive = False
        #: compilation tier (0 = the single-tier legacy JIT)
        self.tier = 0
        #: speculative CHA facts this code depends on:
        #: (class_name, method_name, assumed_target) triples
        self.assumptions: tuple = ()

    @property
    def n_native_instructions(self) -> int:
        return self.code_bytes // 4

    def __repr__(self) -> str:
        return (
            f"CompiledMethod({self.method.qualified_name}, "
            f"{self.n_native_instructions} instrs @{self.entry_pc:#x})"
        )


class InlineSite:
    """Metadata for an inlined (devirtualized) call site.

    ``target`` is the unique callee proven by class-hierarchy analysis;
    ``field_offsets`` are the instance-field offsets the inlined body
    reads/writes, in emission order, so the stepper can compute the
    dynamic heap addresses from the receiver.
    """

    __slots__ = ("target", "field_offsets")

    def __init__(self, target, field_offsets) -> None:
        self.target = target
        self.field_offsets = tuple(field_offsets)
