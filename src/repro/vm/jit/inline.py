"""Method inlining support: CHA devirtualization and tiny-body matching.

The JIT inlines monomorphic calls to tiny, straight-line methods
(getters, setters, small arithmetic helpers).  Monomorphism is proven by
class-hierarchy analysis over the closed program: if exactly one
implementation can be the target for any receiver subtype, the call is
devirtualized.  This is the optimization the paper credits for the JIT
mode's much lower indirect-branch frequency.
"""

from __future__ import annotations

from ...isa.method import JClass, Method, Program
from ...isa.opcodes import Op, OPINFO

#: Maximum bytecode length of an inlinable body.
MAX_INLINE_CODE = 8

#: Opcodes permitted in an inlinable body (straight-line, leaf, no
#: allocation, no monitors).
_INLINABLE_OPS = frozenset({
    Op.NOP, Op.ICONST, Op.FCONST, Op.ACONST_NULL,
    Op.ILOAD, Op.FLOAD, Op.ALOAD,
    Op.IADD, Op.ISUB, Op.IMUL, Op.IAND, Op.IOR, Op.IXOR, Op.ISHL,
    Op.ISHR, Op.IUSHR, Op.INEG, Op.I2B, Op.I2C, Op.I2S,
    Op.FADD, Op.FSUB, Op.FMUL, Op.FNEG,
    Op.GETFIELD, Op.PUTFIELD,
    Op.IRETURN, Op.FRETURN, Op.ARETURN, Op.RETURN,
    Op.DUP, Op.POP,
})


class ClassHierarchy:
    """Closed-world class-hierarchy analysis over a program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._subclasses: dict[str, list[JClass]] = {}
        for cls in program.classes.values():
            node: JClass | None = cls
            while node is not None:
                self._subclasses.setdefault(node.name, []).append(cls)
                sup = node.super_name
                node = program.classes.get(sup) if sup else None

    def subclasses(self, class_name: str) -> list[JClass]:
        """All classes that are (transitively) the named class or below."""
        return self._subclasses.get(class_name, [])

    def unique_target(self, class_name: str, method_name: str) -> Method | None:
        """The single possible implementation for a virtual call, if any."""
        targets = set()
        for cls in self.subclasses(class_name):
            m = cls.find_method(method_name)
            if m is not None:
                targets.add(m)
        if len(targets) == 1:
            return targets.pop()
        return None

    def unique_loaded_target(self, class_name: str,
                             method_name: str) -> Method | None:
        """Open-world CHA: the single implementation among *loaded*
        classes.  Unlike :meth:`unique_target` this is a speculation —
        loading an overriding class later invalidates it, so callers
        must register the assumption for deoptimization."""
        targets = set()
        for cls in self.subclasses(class_name):
            if not cls.loaded:
                continue
            m = cls.find_method(method_name)
            if m is not None:
                targets.add(m)
        if len(targets) == 1:
            return targets.pop()
        return None


def is_inlinable(method: Method) -> bool:
    """A body the template JIT can splice into a call site.

    Requirements: bytecode (not native), unsynchronized, short,
    straight-line (no branches / calls / allocation), and only
    operand-local operations plus field access on statically-known
    offsets.
    """
    if method.is_native or method.is_synchronized:
        return False
    if len(method.code) > MAX_INLINE_CODE:
        return False
    for instr in method.code:
        if instr.op not in _INLINABLE_OPS:
            return False
    # Must end at the first return (straight-line ⇒ exactly one return).
    kinds = [OPINFO[i.op].kind for i in method.code]
    if kinds.count("return") != 1 or kinds[-1] != "return":
        return False
    return True


def inline_field_offsets(method: Method, loader) -> list[int] | None:
    """Instance-field offsets touched by an inlinable body, in order.

    Returns ``None`` if a field cannot be statically resolved (in which
    case the call site is not inlined).
    """
    offsets: list[int] = []
    for instr in method.code:
        if instr.op in (Op.GETFIELD, Op.PUTFIELD):
            try:
                owner, field_name = loader.resolve_field(method.jclass, instr.a)
            except Exception:
                return None
            off = owner.field_offsets.get(field_name)
            if off is None:
                return None
            offsets.append(off)
    return offsets
