"""Native templates for the JIT translator itself.

The translate routine is modelled on Kaffe's: a driver loop walks the
method's bytecode (reading it as *data*), dispatches to a per-opcode
code generator (small, heavily reused routines — hence the good
instruction locality the paper measures inside translate), builds IR in
a reused work area, and finally *stores* each generated native
instruction into the code cache — the compulsory write misses that
dominate the translate portion's data-cache behaviour (Figure 5).

Every instruction carries ``FLAG_TRANSLATE`` so the cache studies can
attribute misses to the translate portion in isolation.
"""

from __future__ import annotations

from ...isa.opcodes import Op, OPINFO
from ...native.layout import JITC_TEXT_BASE, JITC_TEXT_SIZE, TextRegion, VM_DATA_BASE
from ...native.nisa import (
    FLAG_TRANSLATE,
    NCat,
    REG_ARG0,
    REG_ARG1,
    REG_TMP0,
    REG_TMP1,
    REG_TMP2,
)
from ...native.template import PATCH, Template, TemplateBuilder

#: The translator's IR work area (reused across compilations).
WORK_AREA_BASE = VM_DATA_BASE + 0x1000
WORK_AREA_BYTES = 0x800

#: Generator routine classes; each opcode maps onto one of these.
GENERATOR_CLASSES = (
    "const", "local", "stack", "alu", "falu", "branch", "field",
    "invoke", "array", "alloc", "switch", "ret", "misc",
)


def generator_class(op: Op) -> str:
    """Which generator routine translates a given opcode."""
    kind = OPINFO[op].kind
    if kind == "const":
        return "const"
    if kind in ("load_local", "store_local", "iinc"):
        return "local"
    if kind == "stack":
        return "stack"
    if kind in ("binop", "unop"):
        return "falu" if op in (
            Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FNEG, Op.I2F, Op.F2I,
            Op.FCMPL, Op.FCMPG,
        ) else "alu"
    if kind in ("branch", "goto"):
        return "branch"
    if kind == "field":
        return "field"
    if kind == "invoke":
        return "invoke"
    if kind == "array":
        return "array"
    if kind == "new":
        return "alloc"
    if kind == "switch":
        return "switch"
    if kind == "return":
        return "ret"
    return "misc"


class TranslateStubs:
    """pc-stable templates of the translator binary (built once)."""

    def __init__(self) -> None:
        region = TextRegion(JITC_TEXT_BASE, JITC_TEXT_SIZE, "jitc")

        # Driver loop: fetch bytecode (data read!), decode, call generator.
        b = TemplateBuilder("xlate:driver", base_flags=FLAG_TRANSLATE)
        b.load(dst=REG_TMP0, src1=REG_ARG0, ea=PATCH)      # bytecode word
        b.ialu(dst=REG_TMP1, src1=REG_TMP0, n=4)           # decode
        b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)      # opcode gen table
        b.ialu(dst=REG_TMP2, src1=REG_TMP2, n=2)
        b.instr(NCat.ICALL, src1=REG_TMP2, target=PATCH)   # generator routine
        b.instr(NCat.BRANCH, src1=REG_ARG0, taken=PATCH, target=b.rel(-9))
        self.driver = b.build(region=region)

        # Per-class generator routines: IR reads/writes in the work area.
        # Sized after Kaffe-class translators: a few dozen instructions
        # of IR manipulation and operand bookkeeping per bytecode.
        self.generators: dict[str, Template] = {}
        for name in GENERATOR_CLASSES:
            b = TemplateBuilder(f"xlate:gen:{name}", base_flags=FLAG_TRANSLATE)
            b.ialu(dst=REG_TMP0, src1=REG_ARG1, n=10)      # template selection
            b.load(dst=REG_TMP1, src1=REG_TMP0, ea=PATCH)  # IR read
            b.ialu(dst=REG_TMP1, src1=REG_TMP1, n=8)
            b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)  # IR read
            b.ialu(dst=REG_TMP2, src1=REG_TMP2, n=8)
            b.store(src1=REG_TMP2, src2=REG_TMP0, ea=PATCH)  # IR write
            b.ialu(dst=REG_TMP0, src1=REG_TMP0, n=8)
            b.store(src1=REG_TMP0, src2=REG_TMP1, ea=PATCH)  # IR write
            b.instr(NCat.BRANCH, src1=REG_TMP0, taken=False, target=b.rel(2))
            b.ialu(dst=REG_TMP1, src1=REG_TMP1, n=8)
            b.load(dst=REG_TMP1, src1=REG_TMP0, ea=PATCH)  # operand-state read
            b.ialu(dst=REG_TMP1, src1=REG_TMP1, n=6)
            b.store(src1=REG_TMP1, src2=REG_TMP0, ea=PATCH)  # operand-state write
            b.instr(NCat.BRANCH, src1=REG_TMP1, taken=True, target=b.rel(-4))
            b.ialu(dst=REG_TMP2, src1=REG_TMP2, n=6)
            b.instr(NCat.RET, target=PATCH)
            self.generators[name] = b.build(region=region)

        # Emission of one generated native instruction into the code cache.
        b = TemplateBuilder("xlate:emit", base_flags=FLAG_TRANSLATE)
        b.ialu(dst=REG_TMP0, src1=REG_TMP1, n=2)           # encode
        b.store(src1=REG_TMP0, src2=REG_ARG1, ea=PATCH)    # install (write miss!)
        self.emit_instr = b.build(region=region)

        # Archive install: stream one pre-compiled word from the staged
        # archive image into the code cache.  The code-cache store is
        # the same compulsory write miss a fresh translation pays, but
        # none of the driver/generator work happens — this gap is the
        # whole warm-start win the shared code archive measures.
        b = TemplateBuilder("xlate:install", base_flags=FLAG_TRANSLATE)
        b.load(dst=REG_TMP0, src1=REG_ARG0, ea=PATCH)      # archived word
        b.store(src1=REG_TMP0, src2=REG_ARG1, ea=PATCH)    # install (write miss!)
        self.install_instr = b.build(region=region)

        # Per-method install overhead: open/verify the archive entry and
        # relocate method-internal addresses onto the local code cache.
        b = TemplateBuilder("xlate:install-method", base_flags=FLAG_TRANSLATE)
        b.ialu(dst=REG_TMP0, src1=REG_TMP1, n=8)
        b.load(dst=REG_TMP1, src1=REG_TMP0, ea=PATCH)      # entry header
        b.ialu(dst=REG_TMP1, src1=REG_TMP1, n=4)
        b.load(dst=REG_TMP2, src1=REG_TMP0, ea=PATCH)      # relocation table
        b.ialu(dst=REG_TMP2, src1=REG_TMP2, n=4)
        b.instr(NCat.RET, target=PATCH)
        self.install_overhead = b.build(region=region)

        # Per-method overhead: register allocation, branch fixups, flush.
        b = TemplateBuilder("xlate:method", base_flags=FLAG_TRANSLATE)
        b.ialu(dst=REG_TMP0, src1=REG_TMP1, n=48)
        for _ in range(8):
            b.load(dst=REG_TMP1, src1=REG_TMP0, ea=PATCH)
            b.ialu(dst=REG_TMP1, src1=REG_TMP1, n=6)
            b.store(src1=REG_TMP1, src2=REG_TMP0, ea=PATCH)
        b.instr(NCat.BRANCH, src1=REG_TMP0, taken=True, target=b.rel(-9))
        b.ialu(dst=REG_TMP0, src1=REG_TMP0, n=16)
        b.instr(NCat.RET, target=PATCH)
        self.method_overhead = b.build(region=region)

        self.text_bytes = region.used_bytes

    # ------------------------------------------------------------------
    def emit_translation(self, sink, method, install_pcs_per_index,
                         work_cursor: int = 0) -> int:
        """Emit the full translate trace for ``method``.

        ``install_pcs_per_index`` maps bytecode index -> list of code-cache
        pcs the chunk's instructions were installed at.  Returns the
        cycles charged (also accumulated in the sink).
        """
        before = sink.cycles
        work = WORK_AREA_BASE
        n = len(method.code)
        for idx, instr in enumerate(method.code):
            bc_ea = method.bc_addr + method.bc_offsets[idx]
            gen = self.generators[generator_class(instr.op)]
            w = work + (idx * 32) % WORK_AREA_BYTES
            sink.emit(
                self.driver,
                (bc_ea, VM_DATA_BASE + 0x40 + 4 * int(instr.op)),
                (idx + 1 < n,),
                (gen.base_pc,),
            )
            sink.emit(gen, (w, w + 8, w + 16, w + 24, w + 12, w + 20),
                      (), (0,))
            for pc in install_pcs_per_index[idx]:
                sink.emit(self.emit_instr, (pc,))
        sink.emit(
            self.method_overhead,
            tuple(
                WORK_AREA_BASE + 32 * i + off
                for i in range(8) for off in (0, 16)
            ),
            (),
            (0,),
        )
        return sink.cycles - before

    def emit_install(self, sink, compiled) -> int:
        """Emit the archive-install trace for one compiled method: a
        load/store pair per installed native instruction plus a fixed
        per-method relocation pass.  Everything carries
        ``FLAG_TRANSLATE`` — installs are the translate portion's cheap
        path, and callers account them as the install subset of it.
        """
        before = sink.cycles
        stage = WORK_AREA_BASE
        templates = [compiled.prologue.template] + [
            c.template for c in compiled.chunks if c is not None
        ]
        i = 0
        for template in templates:
            for pc in template.pc:
                sink.emit(self.install_instr,
                          (stage + (4 * i) % WORK_AREA_BYTES, int(pc)))
                i += 1
        sink.emit(self.install_overhead, (stage, stage + 16), (), (0,))
        return sink.cycles - before


_SHARED: TranslateStubs | None = None


def shared_translate_stubs() -> TranslateStubs:
    """Process-wide translator template set."""
    global _SHARED
    if _SHARED is None:
        _SHARED = TranslateStubs()
    return _SHARED
