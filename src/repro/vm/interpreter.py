"""The bytecode execution engine (semantic stepper).

One stepper executes bytecode for *both* runtime modes: the semantics
(operand stacks, heap, monitors, threads) are identical; what differs is
the native trace each executed bytecode emits — the interpreter handler
templates (``EMIT_INTERP``), the method's compiled chunks
(``EMIT_COMPILED``), or nothing for bodies inlined into their caller
(``EMIT_NONE``).  This mirrors how the paper instruments the same
program under both JVMs.

The stepper is budgeted (bytecodes per call) so the VM's green-thread
scheduler can interleave threads and so runaway programs are caught.
"""

from __future__ import annotations

import time

from ..isa.opcodes import ArrayType, Op, OPINFO
from ..native.nisa import NCat
from ..obs import TRACER
from . import values
from .interp_templates import MAX_INVOKE_ARGS, shared_templates
from .objects import JArray, JObject, JString
from .threads import (
    BLOCKED,
    EMIT_COMPILED,
    EMIT_INTERP,
    EMIT_NONE,
    FINISHED,
    JThread,
    RUNNABLE,
)


class VMError(Exception):
    """A runtime error the simulated program caused (bad cast, bounds...)."""


class Interpreter:
    """Executes bytecodes for one VM instance."""

    def __init__(self, vm) -> None:
        self.vm = vm
        self.sink = vm.sink
        self.tpls = shared_templates()
        self.stubs = vm.stubs
        self.loader = vm.loader
        self.tiered = vm.tiered
        self._handlers = self._build_dispatch()

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, thread: JThread, budget: int) -> int:
        """Run up to ``budget`` bytecodes; returns the number executed."""
        if TRACER.enabled:
            # The traced variant buckets per-handler wall time by emit
            # mode; keeping it out of line leaves this hot loop with
            # exactly one extra attribute check when tracing is off.
            return self._step_traced(thread, budget)
        executed = 0
        vm = self.vm
        profiler = vm.profiler
        sink = self.sink
        handlers = self._handlers
        opcode_counts = vm.opcode_counts
        while executed < budget and thread.state == RUNNABLE and thread.frames:
            frame = thread.frames[-1]
            instr = frame.code[frame.ip]
            frame.ip += 1
            opcode_counts[instr.op] += 1
            cycles_before = sink.cycles
            overhead_before = vm.overhead_cycles
            handlers[instr.op](thread, frame, instr)
            executed += 1
            if profiler is not None:
                delta = (sink.cycles - cycles_before) - (
                    vm.overhead_cycles - overhead_before
                )
                if delta > 0:
                    # The frame caches its MethodProfile at push time, so
                    # attribution is slot access — no per-bytecode dict
                    # lookup on the method.
                    p = frame.profile
                    if p is None:
                        p = frame.profile = profiler.profile_for(frame.method)
                    if frame.emit_mode == EMIT_INTERP:
                        p.interp_cycles += delta
                    else:
                        p.compiled_cycles += delta
        thread.bytecodes_executed += executed
        if not thread.frames and thread.state == RUNNABLE:
            vm.finish_thread(thread)
        return executed

    def _step_traced(self, thread: JThread, budget: int) -> int:
        """The stepper with per-emit-mode dispatch timing (tracer on).

        Accumulates each handler's wall time into the VM's
        ``dispatch_seconds``/``dispatch_counts`` buckets, keyed by the
        current frame's emit mode; ``JavaVM.run`` emits the aggregates
        as the ``vm.interp.dispatch`` / ``vm.jit.execute`` spans.
        Nested JIT translation happens inside an invoke handler, so its
        wall time also appears separately as ``vm.jit.translate``.
        """
        executed = 0
        vm = self.vm
        profiler = vm.profiler
        sink = self.sink
        handlers = self._handlers
        opcode_counts = vm.opcode_counts
        dispatch_seconds = vm.dispatch_seconds
        dispatch_counts = vm.dispatch_counts
        clock = time.perf_counter
        while executed < budget and thread.state == RUNNABLE and thread.frames:
            frame = thread.frames[-1]
            instr = frame.code[frame.ip]
            frame.ip += 1
            opcode_counts[instr.op] += 1
            cycles_before = sink.cycles
            overhead_before = vm.overhead_cycles
            mode = frame.emit_mode
            started = clock()
            handlers[instr.op](thread, frame, instr)
            dispatch_seconds[mode] += clock() - started
            dispatch_counts[mode] += 1
            executed += 1
            if profiler is not None:
                delta = (sink.cycles - cycles_before) - (
                    vm.overhead_cycles - overhead_before
                )
                profiler.charge(frame, delta)
        thread.bytecodes_executed += executed
        if not thread.frames and thread.state == RUNNABLE:
            vm.finish_thread(thread)
        return executed

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _bc_ea(frame) -> int:
        m = frame.method
        return m.bc_addr + m.bc_offsets[frame.ip - 1]

    def _pool_ea(self, frame, idx) -> int:
        return self.loader.pool_ea(frame.method.jclass, idx)

    def class_of(self, ref):
        """Runtime class of a reference (for dispatch / type checks)."""
        if isinstance(ref, JObject):
            return ref.jclass
        if isinstance(ref, JString):
            return self.vm.string_class
        if isinstance(ref, JArray):
            return self.vm.object_class
        raise VMError("null pointer dereference")

    # ------------------------------------------------------------------
    # dispatch-table construction
    # ------------------------------------------------------------------
    def _build_dispatch(self):
        h = {
            Op.NOP: self._op_nop,
            Op.ICONST: self._op_iconst,
            Op.FCONST: self._op_fconst,
            Op.ACONST_NULL: self._op_aconst_null,
            Op.LDC: self._op_ldc,
            Op.IINC: self._op_iinc,
            Op.POP: self._op_pop,
            Op.DUP: self._op_dup,
            Op.DUP_X1: self._op_dup_x1,
            Op.SWAP: self._op_swap,
            Op.INEG: self._op_unary,
            Op.FNEG: self._op_unary,
            Op.I2F: self._op_unary,
            Op.F2I: self._op_unary,
            Op.I2B: self._op_unary,
            Op.I2C: self._op_unary,
            Op.I2S: self._op_unary,
            Op.FCMPL: self._op_fcmp,
            Op.FCMPG: self._op_fcmp,
            Op.GOTO: self._op_goto,
            Op.TABLESWITCH: self._op_tableswitch,
            Op.LOOKUPSWITCH: self._op_lookupswitch,
            Op.IRETURN: self._op_return_value,
            Op.FRETURN: self._op_return_value,
            Op.ARETURN: self._op_return_value,
            Op.RETURN: self._op_return_void,
            Op.GETSTATIC: self._op_getstatic,
            Op.PUTSTATIC: self._op_putstatic,
            Op.GETFIELD: self._op_getfield,
            Op.PUTFIELD: self._op_putfield,
            Op.INVOKEVIRTUAL: self._op_invoke,
            Op.INVOKESPECIAL: self._op_invoke,
            Op.INVOKESTATIC: self._op_invoke,
            Op.NEW: self._op_new,
            Op.NEWARRAY: self._op_newarray,
            Op.ANEWARRAY: self._op_anewarray,
            Op.ARRAYLENGTH: self._op_arraylength,
            Op.CHECKCAST: self._op_checkcast,
            Op.INSTANCEOF: self._op_instanceof,
            Op.MONITORENTER: self._op_monitorenter,
            Op.MONITOREXIT: self._op_monitorexit,
        }
        for op in (Op.ILOAD, Op.FLOAD, Op.ALOAD):
            h[op] = self._op_load_local
        for op in (Op.ISTORE, Op.FSTORE, Op.ASTORE):
            h[op] = self._op_store_local
        for op in (Op.IADD, Op.ISUB, Op.IMUL, Op.IDIV, Op.IREM, Op.ISHL,
                   Op.ISHR, Op.IUSHR, Op.IAND, Op.IOR, Op.IXOR,
                   Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV):
            h[op] = self._op_binop
        for op in (Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFGE, Op.IFGT, Op.IFLE,
                   Op.IFNULL, Op.IFNONNULL):
            h[op] = self._op_if1
        for op in (Op.IF_ICMPEQ, Op.IF_ICMPNE, Op.IF_ICMPLT, Op.IF_ICMPGE,
                   Op.IF_ICMPGT, Op.IF_ICMPLE, Op.IF_ACMPEQ, Op.IF_ACMPNE):
            h[op] = self._op_if2
        for op in (Op.IALOAD, Op.FALOAD, Op.AALOAD, Op.BALOAD, Op.CALOAD):
            h[op] = self._op_array_load
        for op in (Op.IASTORE, Op.FASTORE, Op.AASTORE, Op.BASTORE,
                   Op.CASTORE):
            h[op] = self._op_array_store
        missing = set(Op) - set(h)
        assert not missing, f"unhandled opcodes: {missing}"
        return h

    # ------------------------------------------------------------------
    # emission helpers
    # ------------------------------------------------------------------
    def _emit_chunk(self, frame, dyn=(), takens=(), targets=()):
        chunk = frame.chunks[frame.ip - 1]
        if chunk is not None:
            chunk.emit(self.sink, frame, dyn, takens, targets)

    # ------------------------------------------------------------------
    # simple opcodes
    # ------------------------------------------------------------------
    def _op_nop(self, thread, frame, instr):
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            self.sink.emit(self.tpls.tpl[Op.NOP], (self._bc_ea(frame),))
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    def _op_iconst(self, thread, frame, instr):
        d = len(frame.stack)
        frame.stack.append(instr.a)
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            self.sink.emit(self.tpls.tpl[Op.ICONST],
                           (self._bc_ea(frame), frame.slot_addr(d)))
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    def _op_fconst(self, thread, frame, instr):
        d = len(frame.stack)
        frame.stack.append(float(instr.a))
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            self.sink.emit(self.tpls.tpl[Op.FCONST],
                           (self._bc_ea(frame), frame.slot_addr(d)))
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    def _op_aconst_null(self, thread, frame, instr):
        d = len(frame.stack)
        frame.stack.append(None)
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            self.sink.emit(self.tpls.tpl[Op.ACONST_NULL],
                           (self._bc_ea(frame), frame.slot_addr(d)))
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    def _op_ldc(self, thread, frame, instr):
        entry = frame.method.pool[instr.a]
        value = entry.value
        if isinstance(value, str):
            value = self.vm.intern_string(value)
        d = len(frame.stack)
        frame.stack.append(value)
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            self.sink.emit(
                self.tpls.tpl[Op.LDC],
                (self._bc_ea(frame), self._pool_ea(frame, instr.a),
                 frame.slot_addr(d)),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    # -- locals ----------------------------------------------------------
    def _op_load_local(self, thread, frame, instr):
        d = len(frame.stack)
        frame.stack.append(frame.locals[instr.a])
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            self.sink.emit(
                self.tpls.tpl[instr.op],
                (self._bc_ea(frame), frame.local_addr(instr.a),
                 frame.slot_addr(d)),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    def _op_store_local(self, thread, frame, instr):
        value = frame.stack.pop()
        d = len(frame.stack)
        frame.locals[instr.a] = value
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            self.sink.emit(
                self.tpls.tpl[instr.op],
                (self._bc_ea(frame), frame.slot_addr(d),
                 frame.local_addr(instr.a)),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    def _op_iinc(self, thread, frame, instr):
        frame.locals[instr.a] = values.i32(frame.locals[instr.a] + instr.b)
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            ea = frame.local_addr(instr.a)
            self.sink.emit(self.tpls.tpl[Op.IINC],
                           (self._bc_ea(frame), ea, ea))
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    # -- operand stack -----------------------------------------------------
    def _op_pop(self, thread, frame, instr):
        frame.stack.pop()
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            self.sink.emit(self.tpls.tpl[Op.POP], (self._bc_ea(frame),))
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    def _op_dup(self, thread, frame, instr):
        d = len(frame.stack)
        frame.stack.append(frame.stack[-1])
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            self.sink.emit(
                self.tpls.tpl[Op.DUP],
                (self._bc_ea(frame), frame.slot_addr(d - 1),
                 frame.slot_addr(d)),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    def _op_dup_x1(self, thread, frame, instr):
        b = frame.stack.pop()
        a = frame.stack.pop()
        d = len(frame.stack)
        frame.stack.extend((b, a, b))
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            s = frame.slot_addr
            self.sink.emit(
                self.tpls.tpl[Op.DUP_X1],
                (self._bc_ea(frame), s(d + 1), s(d), s(d), s(d + 1), s(d + 2)),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    def _op_swap(self, thread, frame, instr):
        stack = frame.stack
        stack[-1], stack[-2] = stack[-2], stack[-1]
        d = len(stack)
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            s = frame.slot_addr
            self.sink.emit(
                self.tpls.tpl[Op.SWAP],
                (self._bc_ea(frame), s(d - 1), s(d - 2), s(d - 1), s(d - 2)),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    # -- arithmetic -----------------------------------------------------------
    _BINOPS = {
        Op.IADD: lambda a, b: values.i32(a + b),
        Op.ISUB: lambda a, b: values.i32(a - b),
        Op.IMUL: lambda a, b: values.i32(a * b),
        Op.IDIV: values.idiv,
        Op.IREM: values.irem,
        Op.ISHL: values.ishl,
        Op.ISHR: values.ishr,
        Op.IUSHR: values.iushr,
        Op.IAND: lambda a, b: values.i32(a & b),
        Op.IOR: lambda a, b: values.i32(a | b),
        Op.IXOR: lambda a, b: values.i32(a ^ b),
        Op.FADD: lambda a, b: a + b,
        Op.FSUB: lambda a, b: a - b,
        Op.FMUL: lambda a, b: a * b,
        Op.FDIV: lambda a, b: a / b if b != 0.0 else (
            float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
        ),
    }

    def _op_binop(self, thread, frame, instr):
        stack = frame.stack
        b = stack.pop()
        a = stack.pop()
        d = len(stack)
        stack.append(self._BINOPS[instr.op](a, b))
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            s = frame.slot_addr
            self.sink.emit(
                self.tpls.tpl[instr.op],
                (self._bc_ea(frame), s(d), s(d + 1), s(d)),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    _UNOPS = {
        Op.INEG: lambda v: values.i32(-v),
        Op.FNEG: lambda v: -v,
        Op.I2F: float,
        Op.F2I: lambda v: values.i32(int(v)),
        Op.I2B: values.i8,
        Op.I2C: values.u16,
        Op.I2S: values.i16,
    }

    def _op_unary(self, thread, frame, instr):
        stack = frame.stack
        stack[-1] = self._UNOPS[instr.op](stack[-1])
        d = len(stack)
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            s = frame.slot_addr
            self.sink.emit(self.tpls.tpl[instr.op],
                           (self._bc_ea(frame), s(d - 1), s(d - 1)))
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    def _op_fcmp(self, thread, frame, instr):
        stack = frame.stack
        b = stack.pop()
        a = stack.pop()
        d = len(stack)
        stack.append(values.fcmp(a, b, -1 if instr.op is Op.FCMPL else 1))
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            s = frame.slot_addr
            self.sink.emit(self.tpls.tpl[instr.op],
                           (self._bc_ea(frame), s(d), s(d + 1), s(d)))
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    # -- control flow -----------------------------------------------------------
    _IF1_TESTS = {
        Op.IFEQ: lambda v: v == 0,
        Op.IFNE: lambda v: v != 0,
        Op.IFLT: lambda v: v < 0,
        Op.IFGE: lambda v: v >= 0,
        Op.IFGT: lambda v: v > 0,
        Op.IFLE: lambda v: v <= 0,
        Op.IFNULL: lambda v: v is None,
        Op.IFNONNULL: lambda v: v is not None,
    }

    def _op_if1(self, thread, frame, instr):
        value = frame.stack.pop()
        d = len(frame.stack)
        taken = self._IF1_TESTS[instr.op](value)
        idx = frame.ip - 1
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            m = frame.method
            self.sink.emit(
                self.tpls.tpl[instr.op],
                (m.bc_addr + m.bc_offsets[idx], frame.slot_addr(d)),
                (taken,),
            )
        elif mode >= EMIT_COMPILED:
            chunk = frame.chunks[idx]
            if chunk is not None:
                chunk.emit(self.sink, frame, (), (taken,))
        if taken:
            frame.ip = instr.a
            if instr.a <= idx and self.tiered is not None:
                self.tiered.on_backedge(thread, frame)

    _IF2_TESTS = {
        Op.IF_ICMPEQ: lambda a, b: a == b,
        Op.IF_ICMPNE: lambda a, b: a != b,
        Op.IF_ICMPLT: lambda a, b: a < b,
        Op.IF_ICMPGE: lambda a, b: a >= b,
        Op.IF_ICMPGT: lambda a, b: a > b,
        Op.IF_ICMPLE: lambda a, b: a <= b,
        Op.IF_ACMPEQ: lambda a, b: a is b,
        Op.IF_ACMPNE: lambda a, b: a is not b,
    }

    def _op_if2(self, thread, frame, instr):
        stack = frame.stack
        b = stack.pop()
        a = stack.pop()
        d = len(stack)
        taken = self._IF2_TESTS[instr.op](a, b)
        idx = frame.ip - 1
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            s = frame.slot_addr
            m = frame.method
            self.sink.emit(
                self.tpls.tpl[instr.op],
                (m.bc_addr + m.bc_offsets[idx], s(d), s(d + 1)),
                (taken,),
            )
        elif mode >= EMIT_COMPILED:
            chunk = frame.chunks[idx]
            if chunk is not None:
                chunk.emit(self.sink, frame, (), (taken,))
        if taken:
            frame.ip = instr.a
            if instr.a <= idx and self.tiered is not None:
                self.tiered.on_backedge(thread, frame)

    def _op_goto(self, thread, frame, instr):
        idx = frame.ip - 1
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            m = frame.method
            self.sink.emit(self.tpls.tpl[Op.GOTO],
                           (m.bc_addr + m.bc_offsets[idx],))
        elif mode >= EMIT_COMPILED:
            chunk = frame.chunks[idx]
            if chunk is not None:
                chunk.emit(self.sink, frame)
        frame.ip = instr.a
        if instr.a <= idx and self.tiered is not None:
            self.tiered.on_backedge(thread, frame)

    def _op_tableswitch(self, thread, frame, instr):
        key = frame.stack.pop()
        low, targets, default = instr.extra
        index = key - low
        if 0 <= index < len(targets):
            target = targets[index]
        else:
            target = default
        self._finish_switch(frame, instr, target, index)

    def _op_lookupswitch(self, thread, frame, instr):
        key = frame.stack.pop()
        table, default = instr.extra
        target = table.get(key, default)
        self._finish_switch(frame, instr, target, key)

    def _finish_switch(self, frame, instr, target, index):
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            m = frame.method
            bc = m.bc_addr + m.bc_offsets[frame.ip - 1]
            table_ea = bc + 12 + 4 * max(0, int(index) % 64)
            key_ea = frame.slot_addr(len(frame.stack))
            self.sink.emit(
                self.tpls.tpl[instr.op],
                (bc, key_ea, table_ea),
            )
        elif mode >= EMIT_COMPILED:
            chunk = frame.chunks[frame.ip - 1]
            target_pc = self._chunk_pc(frame, target)
            if chunk is not None:
                chunk.emit(self.sink, frame, (), (), (target_pc,))
        frame.ip = target

    def _chunk_pc(self, frame, index) -> int:
        """pc of the chunk for a bytecode index (next non-empty)."""
        chunks = frame.chunks
        for i in range(index, len(chunks)):
            if chunks[i] is not None:
                return chunks[i].base_pc
        return 0

    # ------------------------------------------------------------------
    # fields
    # ------------------------------------------------------------------
    def _op_getstatic(self, thread, frame, instr):
        declarer, name = self.loader.resolve_field(frame.method.jclass, instr.a)
        d = len(frame.stack)
        frame.stack.append(declarer.statics[name])
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            self.sink.emit(
                self.tpls.tpl[Op.GETSTATIC],
                (self._bc_ea(frame), self._pool_ea(frame, instr.a),
                 declarer.static_addr[name], frame.slot_addr(d)),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    def _op_putstatic(self, thread, frame, instr):
        declarer, name = self.loader.resolve_field(frame.method.jclass, instr.a)
        value = frame.stack.pop()
        d = len(frame.stack)
        declarer.statics[name] = value
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            self.sink.emit(
                self.tpls.tpl[Op.PUTSTATIC],
                (self._bc_ea(frame), self._pool_ea(frame, instr.a),
                 frame.slot_addr(d), declarer.static_addr[name]),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame)

    def _op_getfield(self, thread, frame, instr):
        self.loader.resolve_field(frame.method.jclass, instr.a)
        obj = frame.stack.pop()
        if not isinstance(obj, JObject):
            raise VMError(f"getfield on {obj!r}")
        entry = frame.method.pool[instr.a]
        name = entry.field_name
        d = len(frame.stack)
        frame.stack.append(obj.fields[name])
        field_ea = obj.field_addr(name)
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            self.sink.emit(
                self.tpls.tpl[Op.GETFIELD],
                (self._bc_ea(frame), self._pool_ea(frame, instr.a),
                 frame.slot_addr(d), field_ea, frame.slot_addr(d)),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame, (field_ea,))

    def _op_putfield(self, thread, frame, instr):
        self.loader.resolve_field(frame.method.jclass, instr.a)
        value = frame.stack.pop()
        obj = frame.stack.pop()
        if not isinstance(obj, JObject):
            raise VMError(f"putfield on {obj!r}")
        name = frame.method.pool[instr.a].field_name
        d = len(frame.stack)
        obj.fields[name] = value
        field_ea = obj.field_addr(name)
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            self.sink.emit(
                self.tpls.tpl[Op.PUTFIELD],
                (self._bc_ea(frame), self._pool_ea(frame, instr.a),
                 frame.slot_addr(d + 1), frame.slot_addr(d), field_ea),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame, (field_ea,))

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def _op_new(self, thread, frame, instr):
        cls = self.loader.resolve_class(frame.method.jclass, instr.a)
        obj = self.vm.heap.new_object(cls)
        if self.vm.lock_elision:
            self._mark_thread_local(thread, frame, obj)
        elif self.tiered is not None:
            self.tiered.mark_allocation(thread, frame, obj)
        d = len(frame.stack)
        frame.stack.append(obj)
        self._emit_alloc(frame, instr, obj, frame.slot_addr(d))

    def _op_newarray(self, thread, frame, instr):
        length = frame.stack.pop()
        arr = self.vm.heap.new_array(ArrayType(instr.a), length)
        if self.vm.lock_elision:
            self._mark_thread_local(thread, frame, arr)
        elif self.tiered is not None:
            self.tiered.mark_allocation(thread, frame, arr)
        d = len(frame.stack)
        frame.stack.append(arr)
        self._emit_alloc(frame, instr, arr, frame.slot_addr(d))

    def _op_anewarray(self, thread, frame, instr):
        cls = self.loader.resolve_class(frame.method.jclass, instr.a)
        length = frame.stack.pop()
        arr = self.vm.heap.new_array("ref", length, ref_class=cls)
        if self.vm.lock_elision:
            self._mark_thread_local(thread, frame, arr)
        elif self.tiered is not None:
            self.tiered.mark_allocation(thread, frame, arr)
        d = len(frame.stack)
        frame.stack.append(arr)
        self._emit_alloc(frame, instr, arr, frame.slot_addr(d))

    def _mark_thread_local(self, thread, frame, obj) -> None:
        """Tag ``obj`` for lock elision when this allocation site is
        proven non-escaping (the instruction just fetched is ip-1)."""
        if (frame.ip - 1) in self.vm.elidable_sites(frame.method):
            obj.tl_thread = thread.thread_id

    def _emit_alloc(self, frame, instr, obj, push_ea):
        mode = frame.emit_mode
        stubs = self.stubs
        if mode == EMIT_INTERP:
            pool_ea = (self._pool_ea(frame, instr.a)
                       if instr.op is not Op.NEWARRAY
                       else self._pool_ea(frame, 0) if len(frame.method.pool)
                       else frame.method.jclass.pool_addr)
            self.sink.emit(
                self.tpls.tpl[instr.op],
                (self._bc_ea(frame), pool_ea, push_ea),
                (),
                (stubs.alloc_entry.base_pc,),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame, (), (), (stubs.alloc_entry.base_pc,))
        if mode != EMIT_NONE:
            stubs.emit_alloc(self.sink, obj.addr, obj.byte_size)

    # ------------------------------------------------------------------
    # arrays
    # ------------------------------------------------------------------
    def _op_arraylength(self, thread, frame, instr):
        arr = frame.stack.pop()
        if not isinstance(arr, JArray):
            raise VMError("arraylength on non-array")
        d = len(frame.stack)
        frame.stack.append(arr.length)
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            self.sink.emit(
                self.tpls.tpl[Op.ARRAYLENGTH],
                (self._bc_ea(frame), frame.slot_addr(d), arr.addr + 8,
                 frame.slot_addr(d)),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame, (arr.addr + 8,))

    _ARRAY_STORE_COERCE = {
        Op.IASTORE: values.i32,
        Op.FASTORE: float,
        Op.BASTORE: values.i8,
        Op.CASTORE: values.u16,
        Op.AASTORE: lambda v: v,
    }

    def _op_array_load(self, thread, frame, instr):
        stack = frame.stack
        index = stack.pop()
        arr = stack.pop()
        if not isinstance(arr, JArray):
            raise VMError(f"array load on {arr!r}")
        arr.check(index)
        d = len(stack)
        stack.append(arr.data[index])
        elem_ea = arr.elem_addr(index)
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            s = frame.slot_addr
            self.sink.emit(
                self.tpls.tpl[instr.op],
                (self._bc_ea(frame), s(d + 1), s(d), arr.addr + 8,
                 elem_ea, s(d)),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame, (arr.addr + 8, elem_ea))

    def _op_array_store(self, thread, frame, instr):
        stack = frame.stack
        value = stack.pop()
        index = stack.pop()
        arr = stack.pop()
        if not isinstance(arr, JArray):
            raise VMError(f"array store on {arr!r}")
        arr.check(index)
        d = len(stack)
        arr.data[index] = self._ARRAY_STORE_COERCE[instr.op](value)
        elem_ea = arr.elem_addr(index)
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            s = frame.slot_addr
            self.sink.emit(
                self.tpls.tpl[instr.op],
                (self._bc_ea(frame), s(d + 2), s(d + 1), s(d),
                 arr.addr + 8, elem_ea),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame, (arr.addr + 8, elem_ea))

    # ------------------------------------------------------------------
    # type checks
    # ------------------------------------------------------------------
    def _op_checkcast(self, thread, frame, instr):
        cls = self.loader.resolve_class(frame.method.jclass, instr.a)
        ref = frame.stack[-1]
        if ref is not None and not self._instance_of(ref, cls):
            raise VMError(
                f"ClassCastException: {ref!r} is not a {cls.name}"
            )
        self._emit_typecheck(frame, instr, Op.CHECKCAST, ref, cls)

    def _op_instanceof(self, thread, frame, instr):
        cls = self.loader.resolve_class(frame.method.jclass, instr.a)
        ref = frame.stack.pop()
        result = 1 if (ref is not None and self._instance_of(ref, cls)) else 0
        frame.stack.append(result)
        self._emit_typecheck(frame, instr, Op.INSTANCEOF, ref, cls)

    def _instance_of(self, ref, cls) -> bool:
        return self.class_of(ref).is_subclass_of(cls)

    def _emit_typecheck(self, frame, instr, op, ref, cls):
        d = len(frame.stack)
        hdr = ref.addr if ref is not None else frame.slot_addr(d - 1)
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            eas = (self._bc_ea(frame), frame.slot_addr(d - 1), hdr,
                   cls.meta_addr)
            if op is Op.INSTANCEOF:
                eas = eas + (frame.slot_addr(d - 1),)
            self.sink.emit(self.tpls.tpl[op], eas)
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame, (hdr,))

    # ------------------------------------------------------------------
    # monitors
    # ------------------------------------------------------------------
    def _op_monitorenter(self, thread, frame, instr):
        obj = frame.stack[-1]
        if obj is None:
            raise VMError("monitorenter on null")
        self._emit_monitor(frame, instr, obj)
        if self.vm.monitor_enter(thread, obj):
            frame.stack.pop()
        else:
            frame.ip -= 1  # re-execute when unblocked

    def _op_monitorexit(self, thread, frame, instr):
        obj = frame.stack.pop()
        if obj is None:
            raise VMError("monitorexit on null")
        self._emit_monitor(frame, instr, obj)
        self.vm.monitor_exit(thread, obj)

    def _emit_monitor(self, frame, instr, obj):
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            d = len(frame.stack)
            self.sink.emit(
                self.tpls.tpl[instr.op],
                (self._bc_ea(frame), frame.slot_addr(d - 1)),
                (),
                (self.stubs.interp_entry_pc,),
            )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame, (), (), (self.stubs.interp_entry_pc,))

    # ------------------------------------------------------------------
    # invocation and returns
    # ------------------------------------------------------------------
    def _op_invoke(self, thread, frame, instr):
        vm = self.vm
        method_ref = frame.method.pool[instr.a]
        resolved = self.loader.resolve_method(frame.method.jclass, instr.a)
        op = instr.op
        stack = frame.stack
        n_args = method_ref.argc + (0 if op is Op.INVOKESTATIC else 1)

        # Virtual dispatch on the receiver's run-time class.
        receiver = None
        if op is Op.INVOKESTATIC:
            target = resolved
        else:
            receiver = stack[-n_args]
            if receiver is None:
                raise VMError(
                    f"null receiver calling {method_ref.method_name}"
                )
            if op is Op.INVOKEVIRTUAL:
                target = self.class_of(receiver).find_method(
                    method_ref.method_name
                )
                if target is None:
                    raise VMError(
                        f"no such method {method_ref.method_name} on "
                        f"{self.class_of(receiver).name}"
                    )
            else:
                target = resolved

        # Synchronized methods lock before anything is popped, so a
        # blocked thread can retry the invoke cleanly.
        sync_obj = None
        if target.is_synchronized:
            sync_obj = receiver if receiver is not None else target.jclass
            if not vm.monitor_enter(thread, sync_obj):
                frame.ip -= 1
                return

        args = stack[len(stack) - n_args:] if n_args else []
        del stack[len(stack) - n_args:]

        if target.is_native:
            self._invoke_native(thread, frame, instr, target, args,
                                receiver, sync_obj, n_args)
            return

        compiled = vm.prepare_method(target)
        callee = thread.push_frame(target)
        if vm.profiler is not None:
            callee.profile = vm.profiler.profile_for(target)
        for i, value in enumerate(args):
            callee.locals[i] = value
        callee.sync_obj = sync_obj

        caller_mode = frame.emit_mode
        inline_site = None
        if caller_mode >= EMIT_COMPILED and frame.compiled is not None:
            inline_site = frame.compiled.inline_info.get(frame.ip - 1)
            if inline_site is not None and inline_site.target is not target:
                # Speculatively devirtualized site whose dynamic target
                # diverged (deopt is in flight): fall back to a real call.
                inline_site = None
        if inline_site is not None:
            callee.emit_mode = EMIT_NONE
            dyn = tuple(receiver.addr + off for off in inline_site.field_offsets)
            self._emit_chunk(frame, dyn)
            callee.return_pc = 0
            return

        if compiled is not None:
            callee.emit_mode = EMIT_COMPILED
            callee.chunks = compiled.chunks
            callee.compiled = compiled
            entry_pc = compiled.entry_pc
        else:
            callee.emit_mode = (EMIT_INTERP if caller_mode != EMIT_NONE
                                else EMIT_NONE)
            entry_pc = self.stubs.interp_entry_pc
        if caller_mode == EMIT_NONE:
            callee.emit_mode = EMIT_NONE

        callee.return_pc = self._return_site(frame)
        self._emit_invoke(frame, instr, op, receiver, target, n_args,
                          callee, entry_pc)
        if callee.emit_mode == EMIT_COMPILED:
            compiled.prologue.emit(self.sink, callee)

    def _return_site(self, frame) -> int:
        """Native pc execution resumes at when the callee returns."""
        if frame.emit_mode >= EMIT_COMPILED:
            chunk = frame.chunks[frame.ip - 1]
            if chunk is not None:
                return chunk.template.end_pc
        return self.tpls.dispatch_pc

    def _emit_invoke(self, frame, instr, op, receiver, target, n_args,
                     callee, entry_pc):
        mode = frame.emit_mode
        if mode == EMIT_NONE:
            return
        if mode >= EMIT_COMPILED:
            if op is Op.INVOKEVIRTUAL:
                self._emit_chunk(
                    frame,
                    (receiver.addr, target.meta_addr),
                    (),
                    (entry_pc,),
                )
            else:
                self._emit_chunk(frame, (), (), (entry_pc,))
            return
        # Interpreter emission.
        d = len(frame.stack)  # args already popped
        s = frame.slot_addr
        bc = self._bc_ea(frame)
        pool_ea = self._pool_ea(frame, instr.a)
        if op is Op.INVOKEVIRTUAL:
            argc_key = min(n_args - 1, MAX_INVOKE_ARGS)
            eas = [bc, pool_ea, s(d), receiver.addr, target.meta_addr]
            pairs = argc_key + 1
        elif op is Op.INVOKESPECIAL:
            argc_key = min(n_args - 1, MAX_INVOKE_ARGS)
            eas = [bc, pool_ea]
            pairs = argc_key + 1
        else:
            argc_key = min(n_args, MAX_INVOKE_ARGS)
            eas = [bc, pool_ea]
            pairs = argc_key
        for k in range(pairs):
            eas.append(s(d + k))                    # arg load (caller stack)
            eas.append(callee.local_addr(k))        # arg store (callee locals)
        eas.append(callee.frame_base)               # saved vpc
        key = ({Op.INVOKEVIRTUAL: "invokevirtual",
                Op.INVOKESPECIAL: "invokespecial",
                Op.INVOKESTATIC: "invokestatic"}[op], argc_key)
        self.sink.emit(self.tpls.tpl[key], tuple(eas), (), (entry_pc,))

    def _invoke_native(self, thread, frame, instr, target, args, receiver,
                       sync_obj, n_args):
        vm = self.vm
        mode = frame.emit_mode
        callee_locals_base = frame.slot_addr(len(frame.stack))
        if mode == EMIT_INTERP:
            # The invoke handler models the call; a static-cost native
            # body follows.
            op = instr.op
            d = len(frame.stack)
            s = frame.slot_addr
            bc = self._bc_ea(frame)
            pool_ea = self._pool_ea(frame, instr.a)
            if op is Op.INVOKEVIRTUAL:
                argc_key = min(n_args - 1, MAX_INVOKE_ARGS)
                eas = [bc, pool_ea, s(d), receiver.addr, target.meta_addr]
                pairs = argc_key + 1
                key = ("invokevirtual", argc_key)
            elif op is Op.INVOKESPECIAL:
                argc_key = min(n_args - 1, MAX_INVOKE_ARGS)
                eas = [bc, pool_ea]
                pairs = argc_key + 1
                key = ("invokespecial", argc_key)
            else:
                argc_key = min(n_args, MAX_INVOKE_ARGS)
                eas = [bc, pool_ea]
                pairs = argc_key
                key = ("invokestatic", argc_key)
            for k in range(pairs):
                eas.append(s(d + k))
                eas.append(callee_locals_base + 4 * k)
            eas.append(callee_locals_base)
            self.sink.emit(self.tpls.tpl[key], tuple(eas),
                           (), (self.stubs.region.base,))
        elif mode >= EMIT_COMPILED:
            if instr.op is Op.INVOKEVIRTUAL:
                self._emit_chunk(frame, (receiver.addr, target.meta_addr),
                                 (), (self.stubs.region.base,))
            else:
                self._emit_chunk(frame, (), (), (self.stubs.region.base,))

        result = target.native_impl(vm, thread, args)
        if result is vm.NATIVE_BLOCKED:
            # Undo: the native could not proceed (e.g. join on a live
            # thread).  Push the args back and retry later.
            frame.stack.extend(args)
            frame.ip -= 1
            if sync_obj is not None:
                vm.monitor_exit(thread, sync_obj)
            return
        if mode != EMIT_NONE:
            data_addr = receiver.addr if receiver is not None else (
                args[0].addr if args and hasattr(args[0], "addr")
                else vm.heap.base
            )
            self.stubs.emit_native(self.sink, target.native_cost, data_addr,
                                   self._return_site(frame))
        if sync_obj is not None:
            vm.monitor_exit(thread, sync_obj)
        if target.has_result:
            frame.stack.append(result)

    def _op_return_value(self, thread, frame, instr):
        result = frame.stack.pop()
        self._do_return(thread, frame, instr, result, True)

    def _op_return_void(self, thread, frame, instr):
        self._do_return(thread, frame, instr, None, False)

    def _do_return(self, thread, frame, instr, result, has_result):
        vm = self.vm
        thread.pop_frame()
        if frame.sync_obj is not None:
            vm.monitor_exit(thread, frame.sync_obj)
        caller = thread.frames[-1] if thread.frames else None
        if has_result and caller is not None:
            push_d = len(caller.stack)
            caller.stack.append(result)
        mode = frame.emit_mode
        if mode == EMIT_INTERP:
            d = len(frame.stack)
            bc = self._bc_ea(frame)
            fh = frame.frame_base
            if has_result:
                caller_push = (caller.slot_addr(push_d) if caller is not None
                               else frame.slot_addr(0))
                self.sink.emit(
                    self.tpls.tpl[instr.op],
                    (bc, frame.slot_addr(d), fh, fh + 4, caller_push),
                    (),
                    (frame.return_pc,),
                )
            else:
                self.sink.emit(
                    self.tpls.tpl[Op.RETURN],
                    (bc, fh, fh + 4),
                    (),
                    (frame.return_pc,),
                )
        elif mode >= EMIT_COMPILED:
            self._emit_chunk(frame, (), (), (frame.return_pc,))
