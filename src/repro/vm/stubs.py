"""Runtime-routine native stubs (allocator, native methods, loader loops).

These model the VM's C runtime: fixed routines whose pcs are reused on
every call (high instruction locality), parameterized by the data
addresses they touch.  Variable-length work (zeroing a new object,
copying class-file bytes) is modelled as a fixed loop-body template
emitted once per iteration — exactly the pc-reuse pattern the real
routine would show.

All stubs are pc-stable, built once per process, and shared by every VM
instance.
"""

from __future__ import annotations

from ..native.layout import VM_TEXT_BASE, VM_TEXT_SIZE, WORD_BYTES, TextRegion
from ..native.nisa import (
    FLAG_CLASSLOAD,
    NCat,
    REG_ARG0,
    REG_ARG1,
    REG_RETVAL,
    REG_TMP0,
    REG_TMP1,
    REG_TMP2,
)
from ..native.template import PATCH, Template, TemplateBuilder

#: Zeroing-loop variants: new objects are zeroed in chunks of this many
#: words per loop iteration.
ALLOC_CHUNK_WORDS = 8

#: Cost buckets (native instructions) for native-method bodies.
NATIVE_COST_BUCKETS = (10, 20, 40, 80, 160)

#: Elements copied per iteration of the bulk-copy routine.
COPY_CHUNK_ELEMS = 8

#: Frame slots transferred per iteration of the OSR / deopt map loops.
OSR_CHUNK_SLOTS = 4


class RuntimeStubs:
    """The VM's runtime-routine templates."""

    def __init__(self) -> None:
        region = TextRegion(VM_TEXT_BASE, VM_TEXT_SIZE, "vm_text")
        self._region = region

        # -- allocator ---------------------------------------------------
        b = TemplateBuilder("alloc:entry")
        b.ialu(dst=REG_TMP0, src1=REG_ARG0, n=2)               # size calc
        b.load(dst=REG_TMP1, src1=REG_TMP2, ea=PATCH)          # heap top
        b.ialu(dst=REG_TMP1, src1=REG_TMP1)                    # bump
        b.instr(NCat.BRANCH, src1=REG_TMP1, taken=False, target=b.rel(2))
        b.store(src1=REG_TMP1, src2=REG_TMP2, ea=PATCH)        # new heap top
        b.store(src1=REG_TMP2, src2=REG_TMP1, ea=PATCH)        # class ptr
        b.store(src1=REG_TMP2, src2=REG_TMP1, ea=PATCH)        # lock word
        b.instr(NCat.IALU, dst=REG_RETVAL, src1=REG_TMP1)
        self.alloc_entry = b.build(region=region)

        b = TemplateBuilder("alloc:zero_loop")
        for _ in range(ALLOC_CHUNK_WORDS):
            b.store(src1=0, src2=REG_TMP1, ea=PATCH)           # zero one word
        b.ialu(dst=REG_TMP1, src1=REG_TMP1)
        b.instr(NCat.BRANCH, src1=REG_TMP1, taken=PATCH, target=b.rel(-9))
        self.alloc_zero = b.build(region=region)

        b = TemplateBuilder("alloc:exit")
        b.instr(NCat.RET, target=PATCH)
        self.alloc_exit = b.build(region=region)

        # -- native-method bodies, by cost bucket --------------------------
        self.native_bodies: dict[int, Template] = {}
        for cost in NATIVE_COST_BUCKETS:
            b = TemplateBuilder(f"native:{cost}")
            # A realistic C-routine mix: ~60% alu, ~15% loads, ~10% branch.
            n_load = max(1, cost * 15 // 100)
            n_branch = max(1, cost // 10)
            n_alu = max(1, cost - n_load - n_branch - 1)
            for i in range(n_load):
                b.load(dst=REG_TMP0, src1=REG_ARG0, ea=PATCH)
            b.ialu(dst=REG_TMP1, src1=REG_TMP0, n=n_alu)
            for i in range(n_branch):
                b.instr(NCat.BRANCH, src1=REG_TMP1, taken=(i % 2 == 0),
                        target=b.rel(-2))
            b.instr(NCat.RET, target=PATCH)
            self.native_bodies[cost] = b.build(region=region)

        # -- bulk copy loop (arraycopy, string ops) ------------------------
        b = TemplateBuilder("copy_chunk")
        for _ in range(COPY_CHUNK_ELEMS):
            b.load(dst=REG_TMP0, src1=REG_ARG0, ea=PATCH)
            b.store(src1=REG_TMP0, src2=REG_ARG1, ea=PATCH)
        b.ialu(dst=REG_ARG0, src1=REG_ARG0, n=2)
        b.instr(NCat.BRANCH, src1=REG_ARG0, taken=PATCH, target=b.rel(-18))
        self.copy_chunk = b.build(region=region)

        # -- lazy constant-pool resolution ----------------------------------
        b = TemplateBuilder("resolve", base_flags=FLAG_CLASSLOAD)
        b.load(dst=REG_TMP0, src1=REG_ARG0, ea=PATCH)          # pool entry
        b.ialu(dst=REG_TMP1, src1=REG_TMP0, n=4)               # name lookup
        b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)          # class struct
        b.ialu(dst=REG_TMP2, src1=REG_TMP2, n=4)
        b.load(dst=REG_TMP2, src1=REG_TMP2, ea=PATCH)          # member walk
        b.instr(NCat.BRANCH, src1=REG_TMP2, taken=True, target=b.rel(-3))
        b.store(src1=REG_TMP2, src2=REG_ARG0, ea=PATCH)        # quicken entry
        self.resolve = b.build(region=region)

        # -- class-loading loops --------------------------------------------
        # Parse loop: read class-file words, build VM metadata.
        b = TemplateBuilder("classload:parse", base_flags=FLAG_CLASSLOAD)
        b.load(dst=REG_TMP0, src1=REG_ARG0, ea=PATCH)          # class-file word
        b.ialu(dst=REG_TMP1, src1=REG_TMP0, n=4)
        b.store(src1=REG_TMP1, src2=REG_ARG1, ea=PATCH)        # metadata word
        b.ialu(dst=REG_ARG0, src1=REG_ARG0)
        b.instr(NCat.BRANCH, src1=REG_ARG0, taken=PATCH, target=b.rel(-7))
        self.classload_parse = b.build(region=region)

        # Bytecode-copy loop: install method bytecode into the bytecode area.
        b = TemplateBuilder("classload:bccopy", base_flags=FLAG_CLASSLOAD)
        b.load(dst=REG_TMP0, src1=REG_ARG0, ea=PATCH)
        b.store(src1=REG_TMP0, src2=REG_ARG1, ea=PATCH)
        b.ialu(dst=REG_ARG0, src1=REG_ARG0)
        b.instr(NCat.BRANCH, src1=REG_ARG0, taken=PATCH, target=b.rel(-3))
        self.classload_bccopy = b.build(region=region)

        # Per-class fixed overhead (superclass link, vtable build).
        b = TemplateBuilder("classload:fixup", base_flags=FLAG_CLASSLOAD)
        b.ialu(dst=REG_TMP0, src1=REG_TMP1, n=12)
        b.load(dst=REG_TMP1, src1=REG_TMP0, ea=PATCH)
        b.store(src1=REG_TMP1, src2=REG_TMP0, ea=PATCH)
        b.store(src1=REG_TMP1, src2=REG_TMP0, ea=PATCH)
        b.instr(NCat.CALL, target=PATCH)
        b.instr(NCat.RET, target=PATCH)
        self.classload_fixup = b.build(region=region)

        # -- tier transitions (OSR entry / deoptimization) -------------------
        # On-stack replacement maps a live interpreter frame into
        # compiled code at a loop header: the runtime walks the frame
        # (header vpc+method, locals, live operand-stack slots, monitor
        # slot) loading each word into the compiled code's register
        # state, then jumps to the loop-header chunk.
        b = TemplateBuilder("osr:map_in")
        b.ialu(dst=REG_TMP0, src1=REG_ARG0, n=2)     # slot address calc
        for _ in range(OSR_CHUNK_SLOTS):
            b.load(dst=REG_TMP1, src1=REG_ARG0, ea=PATCH)
        b.ialu(dst=REG_TMP0, src1=REG_TMP0)
        b.instr(NCat.BRANCH, src1=REG_TMP0, taken=PATCH,
                target=b.rel(-(OSR_CHUNK_SLOTS + 2)))
        self.osr_map_in = b.build(region=region)

        b = TemplateBuilder("osr:enter")
        b.instr(NCat.JUMP, target=PATCH)             # to the loop header
        self.osr_enter = b.build(region=region)

        # Deoptimization is the inverse map: write the compiled frame's
        # register state back into the interpreter frame's slots
        # (reconstructing an equivalent interpreter activation), then
        # jump to the interpreter dispatch loop.
        b = TemplateBuilder("deopt:map_out")
        b.ialu(dst=REG_TMP0, src1=REG_ARG0, n=2)
        for _ in range(OSR_CHUNK_SLOTS):
            b.store(src1=REG_TMP1, src2=REG_ARG0, ea=PATCH)
        b.ialu(dst=REG_TMP0, src1=REG_TMP0)
        b.instr(NCat.BRANCH, src1=REG_TMP0, taken=PATCH,
                target=b.rel(-(OSR_CHUNK_SLOTS + 2)))
        self.deopt_map_out = b.build(region=region)

        b = TemplateBuilder("deopt:exit")
        b.instr(NCat.JUMP, target=PATCH)             # to interp dispatch
        self.deopt_exit = b.build(region=region)

        # -- interpreter method entry (target of invoke ICALLs) --------------
        b = TemplateBuilder("interp_entry")
        b.ialu(dst=REG_TMP0, src1=REG_ARG0, n=3)
        b.instr(NCat.JUMP, target=PATCH)                       # to dispatch loop
        self.interp_entry = b.build(region=region)
        self.interp_entry_pc = self.interp_entry.base_pc

        self.text_bytes = region.used_bytes
        self.region = region

    def native_body(self, cost: int) -> Template:
        """Best-matching native-method body template for a cost estimate."""
        best = min(NATIVE_COST_BUCKETS, key=lambda c: abs(c - cost))
        return self.native_bodies[best]

    # ------------------------------------------------------------------
    # emission helpers (encapsulate each stub's patch-slot ordering)
    # ------------------------------------------------------------------
    #: Address of the allocator's heap-top variable.
    HEAPTOP_EA = 0x0400_0800

    def emit_alloc(self, sink, obj_addr: int, size_bytes: int) -> None:
        """Allocator call: bump, write header, zero the body."""
        sink.emit(
            self.alloc_entry,
            (self.HEAPTOP_EA, self.HEAPTOP_EA, obj_addr, obj_addr + 4),
        )
        words = max(0, (size_bytes - 8 + WORD_BYTES - 1) // WORD_BYTES)
        addr = obj_addr + 8
        remaining = words
        while remaining > 0:
            chunk_eas = []
            for i in range(ALLOC_CHUNK_WORDS):
                chunk_eas.append(addr + 4 * (i % max(remaining, 1)))
            addr += 4 * min(remaining, ALLOC_CHUNK_WORDS)
            remaining -= ALLOC_CHUNK_WORDS
            sink.emit(self.alloc_zero, chunk_eas, (remaining > 0,))
        sink.emit(self.alloc_exit, (), (), (0,))

    def emit_native(self, sink, cost: int, data_addr: int, ret_pc: int = 0) -> None:
        """A native-method body touching memory near ``data_addr``."""
        tpl = self.native_body(cost)
        n_load = len(tpl.patch_ea)
        eas = [data_addr + 8 * i for i in range(n_load)]
        sink.emit(tpl, eas, (), (ret_pc,))

    def emit_copy(self, sink, src_addr: int, dst_addr: int, n_elems: int,
                  elem_bytes: int = 4) -> None:
        """Bulk element copy (System.arraycopy, string building)."""
        done = 0
        while done < n_elems:
            eas = []
            for i in range(COPY_CHUNK_ELEMS):
                k = done + min(i, n_elems - done - 1)
                eas.append(src_addr + elem_bytes * k)
                eas.append(dst_addr + elem_bytes * k)
            done += COPY_CHUNK_ELEMS
            sink.emit(self.copy_chunk, eas, (done < n_elems,))

    def emit_resolve(self, sink, pool_ea: int, class_ea: int) -> None:
        """Lazy constant-pool resolution of one entry."""
        sink.emit(self.resolve, (pool_ea, class_ea, class_ea + 16, pool_ea))

    def _frame_slot_eas(self, frame) -> list[int]:
        """Frame words an OSR/deopt state map transfers: the two header
        words (saved vpc, method pointer), every local, and the live
        operand-stack slots."""
        eas = [frame.frame_base, frame.frame_base + 4]
        eas.extend(frame.local_addr(i) for i in range(len(frame.locals)))
        eas.extend(frame.slot_addr(d) for d in range(len(frame.stack)))
        return eas

    def _emit_state_map(self, sink, tpl, eas: list[int]) -> None:
        done, total = 0, len(eas)
        while done < total:
            chunk = [eas[min(done + i, total - 1)]
                     for i in range(OSR_CHUNK_SLOTS)]
            done += OSR_CHUNK_SLOTS
            sink.emit(tpl, chunk, (done < total,))

    def emit_osr_entry(self, sink, frame, entry_pc: int) -> None:
        """On-stack replacement: load the interpreter frame's state into
        compiled-code registers, then jump to the loop-header chunk."""
        self._emit_state_map(sink, self.osr_map_in,
                             self._frame_slot_eas(frame))
        sink.emit(self.osr_enter, (), (), (entry_pc,))

    def emit_deopt(self, sink, frame, dispatch_pc: int) -> None:
        """Deoptimization: write compiled register state back into the
        interpreter frame's slots, then jump to the dispatch loop."""
        self._emit_state_map(sink, self.deopt_map_out,
                             self._frame_slot_eas(frame))
        sink.emit(self.deopt_exit, (), (), (dispatch_pc,))


_SHARED: RuntimeStubs | None = None


def shared_stubs() -> RuntimeStubs:
    """Process-wide runtime stub set."""
    global _SHARED
    if _SHARED is None:
        _SHARED = RuntimeStubs()
    return _SHARED
