"""Native-code templates for the bytecode interpreter.

The simulated interpreter is modelled after the classic JDK 1.1 C
interpreter: a dispatch loop that fetches the next bytecode (a *data*
load from the bytecode area), indexes a jump table (a data load from
the table in ``.rodata``), and indirect-jumps to the opcode's handler.
Handler bodies move operands between the memory operand stack / locals
and a few fixed VM registers — the source of the interpreter mode's
high memory-operation frequency.

Every executed bytecode therefore emits ``dispatch block + handler
body``.  The dispatch block occupies the *same* pcs for every opcode
(it is one loop in the real binary) while its indirect jump's target
varies per opcode — exactly the pattern that defeats BTB/target
prediction in the paper's branch study.

All templates are pc-stable across VM instances (the interpreter binary
is fixed), so they are built once per process and shared.
"""

from __future__ import annotations

from ..isa.opcodes import Op
from ..native.layout import INTERP_TEXT_BASE, INTERP_TEXT_SIZE, TextRegion, VM_DATA_BASE
from ..native.nisa import (
    NCat,
    REG_FP,
    REG_LOCALS,
    REG_RETVAL,
    REG_SP,
    REG_TMP0,
    REG_TMP1,
    REG_TMP2,
    REG_VPC,
)
from ..native.template import PATCH, Template, TemplateBuilder, concat_templates

#: The switch jump table lives at the bottom of the VM data segment.
JUMPTABLE_BASE = VM_DATA_BASE

#: Cap on modelled argument copies for invoke handlers.
MAX_INVOKE_ARGS = 6

#: The interpreter's C-level state block (vpc/sp/frame caches that the
#: unoptimized C code keeps reloading and spilling).
INTERP_STATE_EA = VM_DATA_BASE + 0x900

#: Where the dispatch loop starts (fixed pcs for every opcode's block).
_DISPATCH_LEN = 8


class InterpreterTemplates:
    """Builds and emits the per-opcode handler templates.

    The ``emit_*`` methods are the only interface the interpreter's
    semantic stepper uses; each encapsulates the patch-slot ordering of
    its template so the stepper cannot get it wrong.
    """

    def __init__(self) -> None:
        region = TextRegion(INTERP_TEXT_BASE, INTERP_TEXT_SIZE, "interp")
        self._dispatch_pc = region.alloc(_DISPATCH_LEN)
        self._region = region
        self.tpl: dict = {}
        self._build_all()
        self.text_bytes = region.used_bytes

    @property
    def dispatch_pc(self) -> int:
        """pc of the dispatch loop head (the switch indirect jump site)."""
        return self._dispatch_pc

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _dispatch(self, op: Op, handler_pc: int) -> Template:
        """The shared fetch-decode-dispatch block, one per opcode so the
        jump-table entry address and handler target can be baked in."""
        b = TemplateBuilder(f"dispatch:{op.name.lower()}")
        b.instr(NCat.LOAD, dst=REG_TMP0, src1=REG_VPC, ea=PATCH)  # fetch bytecode
        b.instr(NCat.IALU, dst=REG_VPC, src1=REG_VPC)             # advance vpc
        b.instr(NCat.IALU, dst=REG_SP, src1=REG_SP)               # bounds check
        b.instr(NCat.IALU, dst=REG_TMP1, src1=REG_TMP0)           # scale opcode
        b.instr(NCat.LOAD, dst=REG_TMP2, src1=REG_TMP1,
                ea=JUMPTABLE_BASE + 4 * int(op))                   # table entry
        b.instr(NCat.IALU, dst=REG_TMP0, src1=REG_VPC)            # operand decode
        b.instr(NCat.IALU, dst=REG_TMP1, src1=REG_SP)             # slot address
        b.instr(NCat.IJUMP, src1=REG_TMP2, target=handler_pc)     # to handler
        return b.build(base_pc=self._dispatch_pc)

    def _finish(self, op_key, body: TemplateBuilder) -> None:
        """Terminate a handler with the jump back to the loop and register
        the combined dispatch+body template under ``op_key``."""
        body.instr(NCat.JUMP, target=self._dispatch_pc)
        handler = body.build(region=self._region)
        if isinstance(op_key, Op):
            table_op = op_key
            name = op_key.name.lower()
        else:
            kind, argc = op_key
            table_op = {
                "invokevirtual": Op.INVOKEVIRTUAL,
                "invokespecial": Op.INVOKESPECIAL,
                "invokestatic": Op.INVOKESTATIC,
            }[kind]
            name = f"{kind}/{argc}"
        dispatch = self._dispatch(table_op, handler.base_pc)
        self.tpl[op_key] = concat_templates(f"interp:{name}", [dispatch, handler])

    @staticmethod
    def _bookkeep(b: TemplateBuilder, n: int = 2) -> None:
        """Handler-local bookkeeping the C interpreter does per bytecode:
        operand decoding, sp bookkeeping, type-tag checks, and the
        reload/spill of the interpreter's own C state — the unoptimized
        filler that pads real handlers to ~25 native instructions per
        bytecode (and, per the paper, streams well on wide cores)."""
        b.ialu(dst=REG_TMP1, src1=REG_SP, n=2)
        b.load(dst=REG_TMP2, src1=REG_FP, ea=INTERP_STATE_EA)
        b.ialu(dst=REG_TMP0, src1=REG_FP, n=2)     # independent recompute
        b.instr(NCat.BRANCH, src1=REG_TMP0, taken=False, target=b.rel(2))
        b.store(src1=REG_TMP2, src2=REG_FP, ea=INTERP_STATE_EA + 8)
        b.instr(NCat.BRANCH, src1=REG_TMP1, taken=False, target=b.rel(2))
        b.ialu(dst=REG_TMP1, src1=REG_SP, n=1 + n)

    # ------------------------------------------------------------------
    # template construction
    # ------------------------------------------------------------------
    def _build_all(self) -> None:
        T = self.tpl

        # nop / pop: dispatch + sp bookkeeping only
        for op in (Op.NOP, Op.POP):
            b = TemplateBuilder(op.name)
            self._bookkeep(b)
            self._finish(op, b)

        # constants: materialize + push
        for op in (Op.ICONST, Op.ACONST_NULL):
            b = TemplateBuilder(op.name)
            b.ialu(dst=REG_TMP0)                       # materialize immediate
            self._bookkeep(b)
            b.store(src1=REG_TMP0, src2=REG_SP, ea=PATCH)  # push
            self._finish(op, b)
        b = TemplateBuilder("fconst")
        b.instr(NCat.FALU, dst=REG_TMP0)
        self._bookkeep(b)
        b.store(src1=REG_TMP0, src2=REG_SP, ea=PATCH)
        self._finish(Op.FCONST, b)

        # ldc: pool load + push   eas: (bc, pool_ea, push_ea)
        b = TemplateBuilder("ldc")
        b.load(dst=REG_TMP0, src1=REG_TMP1, ea=PATCH)
        self._bookkeep(b)
        b.store(src1=REG_TMP0, src2=REG_SP, ea=PATCH)
        self._finish(Op.LDC, b)

        # local loads: local -> stack   eas: (bc, local_ea, push_ea)
        for op in (Op.ILOAD, Op.FLOAD, Op.ALOAD):
            b = TemplateBuilder(op.name)
            b.ialu(dst=REG_TMP1, src1=REG_LOCALS)      # locals index calc
            b.load(dst=REG_TMP0, src1=REG_TMP1, ea=PATCH)
            self._bookkeep(b)
            b.store(src1=REG_TMP0, src2=REG_SP, ea=PATCH)
            self._finish(op, b)

        # local stores: stack -> local   eas: (bc, pop_ea, local_ea)
        for op in (Op.ISTORE, Op.FSTORE, Op.ASTORE):
            b = TemplateBuilder(op.name)
            b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
            b.ialu(dst=REG_TMP1, src1=REG_LOCALS)
            self._bookkeep(b)
            b.store(src1=REG_TMP0, src2=REG_TMP1, ea=PATCH)
            self._finish(op, b)

        # iinc: read-modify-write a local   eas: (bc, local_ea, local_ea)
        b = TemplateBuilder("iinc")
        b.load(dst=REG_TMP0, src1=REG_LOCALS, ea=PATCH)
        b.ialu(dst=REG_TMP0, src1=REG_TMP0)
        self._bookkeep(b)
        b.store(src1=REG_TMP0, src2=REG_LOCALS, ea=PATCH)
        self._finish(Op.IINC, b)

        # dup: reload top, push copy   eas: (bc, top_ea, push_ea)
        b = TemplateBuilder("dup")
        b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
        self._bookkeep(b)
        b.store(src1=REG_TMP0, src2=REG_SP, ea=PATCH)
        self._finish(Op.DUP, b)

        # dup_x1: 2 loads, 3 stores   eas: (bc, s1, s0, w0, w1, w2)
        b = TemplateBuilder("dup_x1")
        b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
        b.load(dst=REG_TMP1, src1=REG_SP, ea=PATCH)
        self._bookkeep(b)
        b.store(src1=REG_TMP0, src2=REG_SP, ea=PATCH)
        b.store(src1=REG_TMP1, src2=REG_SP, ea=PATCH)
        b.store(src1=REG_TMP0, src2=REG_SP, ea=PATCH)
        self._finish(Op.DUP_X1, b)

        # swap: 2 loads, 2 stores   eas: (bc, s1, s0, w1, w0)
        b = TemplateBuilder("swap")
        b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
        b.load(dst=REG_TMP1, src1=REG_SP, ea=PATCH)
        self._bookkeep(b)
        b.store(src1=REG_TMP0, src2=REG_SP, ea=PATCH)
        b.store(src1=REG_TMP1, src2=REG_SP, ea=PATCH)
        self._finish(Op.SWAP, b)

        # binary arithmetic: pop 2, op, push   eas: (bc, a_ea, b_ea, res_ea)
        binop_cat = {
            Op.IADD: NCat.IALU, Op.ISUB: NCat.IALU, Op.IMUL: NCat.IMUL,
            Op.IDIV: NCat.IDIV, Op.IREM: NCat.IDIV, Op.ISHL: NCat.IALU,
            Op.ISHR: NCat.IALU, Op.IUSHR: NCat.IALU, Op.IAND: NCat.IALU,
            Op.IOR: NCat.IALU, Op.IXOR: NCat.IALU,
            Op.FADD: NCat.FALU, Op.FSUB: NCat.FALU, Op.FMUL: NCat.FMUL,
            Op.FDIV: NCat.FDIV,
        }
        for op, cat in binop_cat.items():
            b = TemplateBuilder(op.name)
            b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
            b.load(dst=REG_TMP1, src1=REG_SP, ea=PATCH)
            b.instr(cat, dst=REG_TMP0, src1=REG_TMP0, src2=REG_TMP1)
            self._bookkeep(b)
            b.store(src1=REG_TMP0, src2=REG_SP, ea=PATCH)
            self._finish(op, b)

        # fcmp: pop 2 floats, push int   eas: (bc, a_ea, b_ea, res_ea)
        for op in (Op.FCMPL, Op.FCMPG):
            b = TemplateBuilder(op.name)
            b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
            b.load(dst=REG_TMP1, src1=REG_SP, ea=PATCH)
            b.instr(NCat.FALU, dst=REG_TMP0, src1=REG_TMP0, src2=REG_TMP1)
            b.ialu(dst=REG_TMP0, src1=REG_TMP0)
            self._bookkeep(b)
            b.store(src1=REG_TMP0, src2=REG_SP, ea=PATCH)
            self._finish(op, b)

        # unary ops / conversions   eas: (bc, a_ea, res_ea)
        unop_cat = {
            Op.INEG: NCat.IALU, Op.I2B: NCat.IALU, Op.I2C: NCat.IALU,
            Op.I2S: NCat.IALU, Op.FNEG: NCat.FALU, Op.I2F: NCat.FALU,
            Op.F2I: NCat.FALU,
        }
        for op, cat in unop_cat.items():
            b = TemplateBuilder(op.name)
            b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
            b.instr(cat, dst=REG_TMP0, src1=REG_TMP0)
            self._bookkeep(b)
            b.store(src1=REG_TMP0, src2=REG_SP, ea=PATCH)
            self._finish(op, b)

        # one-operand branches   eas: (bc, val_ea)   takens: (cond,)
        for op in (Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFGE, Op.IFGT, Op.IFLE,
                   Op.IFNULL, Op.IFNONNULL):
            b = TemplateBuilder(op.name)
            b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
            b.ialu(dst=REG_TMP0, src1=REG_TMP0)           # compare
            b.instr(NCat.BRANCH, src1=REG_TMP0, taken=PATCH, target=b.rel(2))
            b.ialu(dst=REG_VPC, src1=REG_VPC)             # fallthrough vpc
            self._bookkeep(b, 1)
            self._finish(op, b)

        # two-operand branches   eas: (bc, a_ea, b_ea)   takens: (cond,)
        for op in (Op.IF_ICMPEQ, Op.IF_ICMPNE, Op.IF_ICMPLT, Op.IF_ICMPGE,
                   Op.IF_ICMPGT, Op.IF_ICMPLE, Op.IF_ACMPEQ, Op.IF_ACMPNE):
            b = TemplateBuilder(op.name)
            b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
            b.load(dst=REG_TMP1, src1=REG_SP, ea=PATCH)
            b.instr(NCat.IALU, dst=REG_TMP0, src1=REG_TMP0, src2=REG_TMP1)
            b.instr(NCat.BRANCH, src1=REG_TMP0, taken=PATCH, target=b.rel(2))
            b.ialu(dst=REG_VPC, src1=REG_VPC)
            self._bookkeep(b, 1)
            self._finish(op, b)

        # goto: vpc update only   eas: (bc,)
        b = TemplateBuilder("goto")
        b.ialu(dst=REG_VPC, src1=REG_VPC, n=2)
        self._finish(Op.GOTO, b)

        # switches: bounds checks + table read from the bytecode stream
        # eas: (bc, table_ea)
        for op in (Op.TABLESWITCH, Op.LOOKUPSWITCH):
            b = TemplateBuilder(op.name)
            b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)    # key (popped)
            b.ialu(dst=REG_TMP1, src1=REG_TMP0, n=3)       # bounds / probe calc
            b.instr(NCat.BRANCH, src1=REG_TMP1, taken=False, target=b.rel(3))
            b.load(dst=REG_VPC, src1=REG_TMP1, ea=PATCH)   # read target offset
            b.ialu(dst=REG_VPC, src1=REG_VPC)
            self._finish(op, b)

        # field access (quickened fast path)
        # getfield  eas: (bc, pool_ea, obj_ea, field_ea, push_ea)
        b = TemplateBuilder("getfield")
        b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)      # pool entry (offset)
        b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)        # objectref
        b.ialu(dst=REG_TMP1, src1=REG_TMP0)                # null check / addr
        b.load(dst=REG_TMP0, src1=REG_TMP1, ea=PATCH)      # the field
        self._bookkeep(b, 1)
        b.store(src1=REG_TMP0, src2=REG_SP, ea=PATCH)      # push
        self._finish(Op.GETFIELD, b)

        # putfield  eas: (bc, pool_ea, val_ea, obj_ea, field_ea)
        b = TemplateBuilder("putfield")
        b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)
        b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)        # value
        b.load(dst=REG_TMP1, src1=REG_SP, ea=PATCH)        # objectref
        b.ialu(dst=REG_TMP1, src1=REG_TMP1)
        self._bookkeep(b, 1)
        b.store(src1=REG_TMP0, src2=REG_TMP1, ea=PATCH)    # the field
        self._finish(Op.PUTFIELD, b)

        # getstatic  eas: (bc, pool_ea, static_ea, push_ea)
        b = TemplateBuilder("getstatic")
        b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)
        b.load(dst=REG_TMP0, src1=REG_TMP2, ea=PATCH)
        self._bookkeep(b, 1)
        b.store(src1=REG_TMP0, src2=REG_SP, ea=PATCH)
        self._finish(Op.GETSTATIC, b)

        # putstatic  eas: (bc, pool_ea, pop_ea, static_ea)
        b = TemplateBuilder("putstatic")
        b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)
        b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
        self._bookkeep(b, 1)
        b.store(src1=REG_TMP0, src2=REG_TMP2, ea=PATCH)
        self._finish(Op.PUTSTATIC, b)

        # allocation handlers: pool read + call into the allocator stub
        # eas: (bc, pool_ea, push_ea)
        for op in (Op.NEW, Op.NEWARRAY, Op.ANEWARRAY):
            b = TemplateBuilder(op.name)
            b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)
            b.ialu(dst=REG_TMP1, src1=REG_TMP2)
            b.instr(NCat.CALL, target=PATCH)               # allocator routine
            self._bookkeep(b, 1)
            b.store(src1=REG_RETVAL, src2=REG_SP, ea=PATCH)
            self._finish(op, b)

        # arraylength  eas: (bc, obj_ea, len_ea, push_ea)
        b = TemplateBuilder("arraylength")
        b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
        b.load(dst=REG_TMP1, src1=REG_TMP0, ea=PATCH)
        self._bookkeep(b, 1)
        b.store(src1=REG_TMP1, src2=REG_SP, ea=PATCH)
        self._finish(Op.ARRAYLENGTH, b)

        # array loads  eas: (bc, idx_ea, ref_ea, len_ea, elem_ea, push_ea)
        for op in (Op.IALOAD, Op.FALOAD, Op.AALOAD, Op.BALOAD, Op.CALOAD):
            b = TemplateBuilder(op.name)
            b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)    # index
            b.load(dst=REG_TMP1, src1=REG_SP, ea=PATCH)    # arrayref
            b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)  # length
            b.instr(NCat.BRANCH, src1=REG_TMP2, taken=False, target=b.rel(4))
            b.ialu(dst=REG_TMP2, src1=REG_TMP1, src2=REG_TMP0)
            b.load(dst=REG_TMP0, src1=REG_TMP2, ea=PATCH)  # element
            self._bookkeep(b, 1)
            b.store(src1=REG_TMP0, src2=REG_SP, ea=PATCH)  # push
            self._finish(op, b)

        # array stores  eas: (bc, val_ea, idx_ea, ref_ea, len_ea, elem_ea)
        for op in (Op.IASTORE, Op.FASTORE, Op.AASTORE, Op.BASTORE, Op.CASTORE):
            b = TemplateBuilder(op.name)
            b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)    # value
            b.load(dst=REG_TMP1, src1=REG_SP, ea=PATCH)    # index
            b.load(dst=REG_TMP2, src1=REG_SP, ea=PATCH)    # arrayref
            b.load(dst=REG_TMP2, src1=REG_TMP2, ea=PATCH)  # length
            b.instr(NCat.BRANCH, src1=REG_TMP2, taken=False, target=b.rel(3))
            b.ialu(dst=REG_TMP2, src1=REG_TMP2, src2=REG_TMP1)
            b.store(src1=REG_TMP0, src2=REG_TMP2, ea=PATCH)  # element
            self._bookkeep(b, 1)
            self._finish(op, b)

        # checkcast / instanceof  eas: (bc, obj_ea, hdr_ea, cls_ea, res_push_ea?)
        b = TemplateBuilder("checkcast")
        b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
        b.load(dst=REG_TMP1, src1=REG_TMP0, ea=PATCH)      # class ptr
        b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)      # class struct walk
        b.ialu(dst=REG_TMP2, src1=REG_TMP2, n=2)
        b.instr(NCat.BRANCH, src1=REG_TMP2, taken=False, target=b.rel(2))
        self._bookkeep(b, 1)
        self._finish(Op.CHECKCAST, b)

        b = TemplateBuilder("instanceof")
        b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
        b.load(dst=REG_TMP1, src1=REG_TMP0, ea=PATCH)
        b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)
        b.ialu(dst=REG_TMP2, src1=REG_TMP2, n=2)
        b.instr(NCat.BRANCH, src1=REG_TMP2, taken=False, target=b.rel(2))
        b.store(src1=REG_TMP2, src2=REG_SP, ea=PATCH)      # push result
        self._finish(Op.INSTANCEOF, b)

        # monitors: pop the ref, call into the lock manager routine
        # eas: (bc, obj_ea)   targets: (lock_routine_pc,)
        for op in (Op.MONITORENTER, Op.MONITOREXIT):
            b = TemplateBuilder(op.name)
            b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
            b.ialu(dst=REG_TMP1, src1=REG_TMP0)
            b.instr(NCat.CALL, target=PATCH)
            self._finish(op, b)

        # invokes, one variant per (kind, modelled argc)
        # virtual eas: (bc, pool_ea, recv_ea, hdr_ea, vtbl_ea,
        #               arg pairs (load_ea, store_ea) * argc, savedvpc_ea)
        #   targets: (entry_pc,)
        for argc in range(MAX_INVOKE_ARGS + 1):
            b = TemplateBuilder(f"invokevirtual/{argc}")
            b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)   # pool entry
            b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)     # receiver
            b.load(dst=REG_TMP1, src1=REG_TMP0, ea=PATCH)   # class ptr
            b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)   # vtable entry
            b.ialu(dst=REG_TMP1, src1=REG_TMP1, n=2)        # frame setup
            for _ in range(argc + 1):                        # receiver + args
                b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
                b.store(src1=REG_TMP0, src2=REG_LOCALS, ea=PATCH)
            b.store(src1=REG_VPC, src2=REG_TMP1, ea=PATCH)  # save vpc in frame
            b.instr(NCat.ICALL, src1=REG_TMP2, target=PATCH)
            self._finish(("invokevirtual", argc), b)

            # special: resolved target, still copies receiver
            b = TemplateBuilder(f"invokespecial/{argc}")
            b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)   # pool entry
            b.ialu(dst=REG_TMP1, src1=REG_TMP1, n=2)
            for _ in range(argc + 1):
                b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
                b.store(src1=REG_TMP0, src2=REG_LOCALS, ea=PATCH)
            b.store(src1=REG_VPC, src2=REG_TMP1, ea=PATCH)
            b.instr(NCat.ICALL, src1=REG_TMP2, target=PATCH)
            self._finish(("invokespecial", argc), b)

            # static: no receiver
            b = TemplateBuilder(f"invokestatic/{argc}")
            b.load(dst=REG_TMP2, src1=REG_TMP1, ea=PATCH)
            b.ialu(dst=REG_TMP1, src1=REG_TMP1, n=2)
            for _ in range(argc):
                b.load(dst=REG_TMP0, src1=REG_SP, ea=PATCH)
                b.store(src1=REG_TMP0, src2=REG_LOCALS, ea=PATCH)
            b.store(src1=REG_VPC, src2=REG_TMP1, ea=PATCH)
            b.instr(NCat.ICALL, src1=REG_TMP2, target=PATCH)
            self._finish(("invokestatic", argc), b)

        # returns with a value
        # eas: (bc, res_ea, savedvpc_ea, savedfp_ea, caller_push_ea)
        for op in (Op.IRETURN, Op.FRETURN, Op.ARETURN):
            b = TemplateBuilder(op.name)
            b.load(dst=REG_RETVAL, src1=REG_SP, ea=PATCH)   # result
            b.load(dst=REG_VPC, src1=REG_LOCALS, ea=PATCH)  # restore vpc
            b.load(dst=REG_LOCALS, src1=REG_LOCALS, ea=PATCH)  # restore frame
            b.ialu(dst=REG_SP, src1=REG_SP)
            b.store(src1=REG_RETVAL, src2=REG_SP, ea=PATCH)  # push into caller
            b.instr(NCat.RET, target=PATCH)
            self._finish(op, b)

        # void return   eas: (bc, savedvpc_ea, savedfp_ea)
        b = TemplateBuilder("return")
        b.load(dst=REG_VPC, src1=REG_LOCALS, ea=PATCH)
        b.load(dst=REG_LOCALS, src1=REG_LOCALS, ea=PATCH)
        b.ialu(dst=REG_SP, src1=REG_SP)
        b.instr(NCat.RET, target=PATCH)
        self._finish(Op.RETURN, b)

    # ------------------------------------------------------------------
    # emission interface (one method per handler shape)
    # ------------------------------------------------------------------
    def emit(self, sink, op_key, eas=(), takens=(), targets=()) -> Template:
        tpl = self.tpl[op_key]
        sink.emit(tpl, eas, takens, targets)
        return tpl


_SHARED: InterpreterTemplates | None = None


def shared_templates() -> InterpreterTemplates:
    """Process-wide interpreter template set (the binary is fixed)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = InterpreterTemplates()
    return _SHARED
