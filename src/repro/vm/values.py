"""Java value semantics helpers.

Integer arithmetic follows Java's 32-bit two's-complement wrapping and
truncate-toward-zero division.  Floats are carried as Python doubles
(documented simplification; none of the workloads depend on float32
rounding).
"""

from __future__ import annotations

_I32_MASK = 0xFFFFFFFF
_I32_SIGN = 0x80000000


def i32(value: int) -> int:
    """Wrap to Java int range [-2^31, 2^31)."""
    value &= _I32_MASK
    return value - (1 << 32) if value & _I32_SIGN else value


def i8(value: int) -> int:
    """Truncate to Java byte (i2b)."""
    value &= 0xFF
    return value - 256 if value & 0x80 else value


def i16(value: int) -> int:
    """Truncate to Java short (i2s)."""
    value &= 0xFFFF
    return value - 65536 if value & 0x8000 else value


def u16(value: int) -> int:
    """Truncate to Java char (i2c)."""
    return value & 0xFFFF


def idiv(a: int, b: int) -> int:
    """Java idiv: truncate toward zero; raises ZeroDivisionError like athrow."""
    if b == 0:
        raise ZeroDivisionError("/ by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return i32(q)


def irem(a: int, b: int) -> int:
    """Java irem: sign follows the dividend."""
    return i32(a - idiv(a, b) * b)


def ishl(a: int, b: int) -> int:
    return i32(a << (b & 31))


def ishr(a: int, b: int) -> int:
    return i32(a >> (b & 31))


def iushr(a: int, b: int) -> int:
    return i32((a & _I32_MASK) >> (b & 31))


def fcmp(a: float, b: float, nan_result: int) -> int:
    """fcmpl/fcmpg semantics: -1/0/1, NaN yields ``nan_result``."""
    if a != a or b != b:  # NaN
        return nan_result
    if a < b:
        return -1
    if a > b:
        return 1
    return 0
