"""Authoring a new workload against the public bytecode API.

Builds a small program from scratch with the ProgramBuilder — a Fibonacci
class with a synchronized memo table — and puts it through the same
machinery the bundled benchmarks use: both execution modes, the oracle
analysis, and a branch-prediction measurement on its trace.

Usage::

    python examples/custom_workload.py
"""

from repro.analysis.hybrid import OracleAnalysis
from repro.arch.branch import compare_predictors
from repro.isa import ProgramBuilder
from repro.vm import CompileOnFirstUse, InterpretOnly, JavaVM


def build_program():
    pb = ProgramBuilder("fib-demo", main_class="demo/Main")

    memo = pb.cls("demo/Memo")
    memo.field("table", "ref")
    init = memo.method("<init>", argc=1)
    init.aload(0)
    init.new("java/util/Hashtable").dup()
    init.invokespecial("java/util/Hashtable", "<init>", 0)
    init.putfield("demo/Memo", "table")
    init.return_()
    # synchronized lookup/store — the library Hashtable is itself
    # synchronized, so this produces recursive (case b) locking too.
    get = memo.method("lookup", argc=1, returns=True, synchronized=True)
    absent = get.new_label()
    get.aload(0).getfield("demo/Memo", "table").iload(1)
    get.invokevirtual("java/util/Hashtable", "containsKey", 1, True)
    get.ifeq(absent)
    get.aload(0).getfield("demo/Memo", "table").iload(1)
    get.invokevirtual("java/util/Hashtable", "get", 1, True)
    get.ireturn()
    get.bind(absent)
    get.iconst(-1).ireturn()
    put = memo.method("store", argc=2, synchronized=True)
    put.aload(0).getfield("demo/Memo", "table")
    put.iload(1).iload(2)
    put.invokevirtual("java/util/Hashtable", "put", 2, False)
    put.return_()

    main = pb.cls("demo/Main")
    fib = main.method("fib", argc=2, returns=True, static=True)
    # locals: 0=n 1=memo 2=cached 3=result
    base = fib.new_label()
    hit = fib.new_label()
    fib.iload(0).iconst(2).if_icmplt(base)
    fib.aload(1).iload(0)
    fib.invokevirtual("demo/Memo", "lookup", 1, True)
    fib.istore(2)
    fib.iload(2).ifge(hit)
    fib.iload(0).iconst(1).isub().aload(1)
    fib.invokestatic("demo/Main", "fib", 2, True)
    fib.iload(0).iconst(2).isub().aload(1)
    fib.invokestatic("demo/Main", "fib", 2, True)
    fib.iadd().istore(3)
    fib.aload(1).iload(0).iload(3)
    fib.invokevirtual("demo/Memo", "store", 2, False)
    fib.iload(3).ireturn()
    fib.bind(hit)
    fib.iload(2).ireturn()
    fib.bind(base)
    fib.iload(0).ireturn()

    m = main.method("main", static=True)
    m.new("demo/Memo").dup().iconst(0)
    m.invokespecial("demo/Memo", "<init>", 1)
    m.astore(0)
    m.iconst(25).aload(0)
    m.invokestatic("demo/Main", "fib", 2, True)
    m.istore(1)
    m.getstatic("java/lang/System", "out").iload(1)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()
    return pb


def main() -> None:
    print("building and verifying demo/Main...\n")
    interp = JavaVM(build_program().build(),
                    strategy=InterpretOnly(), record=True).run()
    jit = JavaVM(build_program().build(),
                 strategy=CompileOnFirstUse(), record=True).run()
    assert interp.stdout == jit.stdout
    print(f"fib(25) = {interp.stdout[0]}")
    print(f"interpreter: {interp.cycles:,} cycles   "
          f"JIT: {jit.cycles:,} cycles "
          f"({interp.cycles / jit.cycles:.2f}x)")
    print(f"monitor acquisitions: {jit.sync['acquire_ops']} "
          f"(cases {jit.sync['case_counts']})")

    analysis = OracleAnalysis(interp, jit)
    s = analysis.summary()
    print(f"oracle would compile {s['compiled_by_oracle']}/{s['methods']} "
          f"methods, saving {100 * s['oracle_saving']:.1f}% over always-JIT")

    print("\ngshare misprediction per mode:")
    for name, result in (("interp", interp), ("jit", jit)):
        res = compare_predictors(result.trace, names=("gshare",))["gshare"]
        print(f"  {name:7s}: {100 * res.misprediction_rate:.1f}% "
              f"of {res.transfers:,} transfers")


if __name__ == "__main__":
    main()
