"""When or whether to translate: the oracle ("opt") study on one benchmark.

Reproduces the Section 3 methodology end to end:

1. profile an interpreter-only run (per-method interpret cost I_i),
2. profile an always-JIT run (translate cost T_i, compiled cost E_i),
3. compute each method's crossover N_i = T_i / (I_i - E_i) and the
   oracle decision (compile iff n_i > N_i),
4. enact the decisions in a real mixed-mode run and compare.

Usage::

    python examples/adaptive_compilation.py [benchmark] [scale]
"""

import sys

from repro.analysis import oracle_run


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "db"
    scale = sys.argv[2] if len(sys.argv) > 2 else "s1"

    print(f"oracle (opt) analysis of {benchmark} ({scale})\n")
    analysis, mixed = oracle_run(benchmark, scale)

    decisions = sorted(analysis.decisions.values(),
                       key=lambda d: -(d.translate + d.exec_total))
    print(f"{'method':44s}{'n_i':>6s}{'N_i':>8s}{'decision':>10s}")
    for d in decisions[:14]:
        crossover = f"{d.crossover:.1f}" if d.crossover != float("inf") else "inf"
        verdict = "compile" if d.compile else "interpret"
        print(f"{d.name:44s}{d.n:>6d}{crossover:>8s}{verdict:>10s}")
    if len(decisions) > 14:
        print(f"... and {len(decisions) - 14} more methods")

    s = analysis.summary()
    print()
    print(f"always-JIT cycles       : {s['jit_total']:,.0f}")
    print(f"interpret-only cycles   : {s['interp_total']:,.0f} "
          f"({s['interp_to_jit_ratio']:.2f}x the JIT)")
    print(f"oracle projection       : {s['oracle_total']:,.0f} "
          f"({100 * s['oracle_saving']:.1f}% saved)")
    print(f"oracle enacted (real)   : {mixed.cycles:,} "
          f"({100 * (1 - mixed.cycles / s['jit_total']):.1f}% saved)")
    print(f"methods compiled        : {s['compiled_by_oracle']}"
          f"/{s['methods']}")
    print()
    print("The paper's conclusion: even a perfect heuristic recovers only")
    print("~10-15% on translation-heavy programs — effort is better spent")
    print("on the translated code itself and on architectural support.")


if __name__ == "__main__":
    main()
