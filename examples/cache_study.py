"""Cache behaviour of one benchmark under both modes.

Replays the benchmark's native trace through several cache geometries —
the paper's Section 4.3 methodology: base 64K split L1, a line-size
sweep, and translate-portion attribution for the JIT mode.

Usage::

    python examples/cache_study.py [benchmark] [scale]
"""

import sys

from repro.analysis import get_trace
from repro.arch.caches import simulate_split_l1


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "db"
    scale = sys.argv[2] if len(sys.argv) > 2 else "s1"

    print(f"cache study: {benchmark} ({scale})\n")

    traces = {mode: get_trace(benchmark, scale, mode)
              for mode in ("interp", "jit")}

    print("base geometry (64K, 32B lines, I 2-way / D 4-way):")
    print(f"{'mode':8s}{'I refs':>12s}{'I miss%':>9s}"
          f"{'D refs':>12s}{'D miss%':>9s}{'wr-miss%':>10s}")
    for mode, trace in traces.items():
        r = simulate_split_l1(trace)
        print(f"{mode:8s}{r.icache.total_refs:>12,}"
              f"{100 * r.icache.miss_rate:>9.3f}"
              f"{r.dcache.total_refs:>12,}"
              f"{100 * r.dcache.miss_rate:>9.3f}"
              f"{100 * r.dcache.write_miss_fraction:>10.1f}")

    print("\nline-size sweep, 8K direct-mapped D-cache (miss %):")
    print(f"{'mode':8s}" + "".join(f"{b:>8d}B" for b in (16, 32, 64, 128)))
    for mode, trace in traces.items():
        rates = []
        for block in (16, 32, 64, 128):
            r = simulate_split_l1(
                trace,
                dcache={"size": 8 << 10, "assoc": 1, "block": block},
            )
            rates.append(100 * r.dcache.miss_rate)
        print(f"{mode:8s}" + "".join(f"{v:>9.3f}" for v in rates))

    print("\ntranslate-portion attribution (JIT mode):")
    r = simulate_split_l1(traces["jit"], attribute_translate=True)
    d = r.dcache
    share = d.misses[1] / max(1, d.total_misses)
    writes = d.write_misses[1] / max(1, d.misses[1])
    print(f"  D-misses inside translate : {int(d.misses[1]):,} "
          f"({100 * share:.0f}% of all)")
    print(f"  of which writes           : {100 * writes:.0f}% "
          f"(code generation / installation)")
    print("\nThe paper's Section 6 proposal follows from these numbers:")
    print("generate code directly into the I-cache to avoid the redundant")
    print("fetch-on-write-allocate and the D->I transfer.")


if __name__ == "__main__":
    main()
