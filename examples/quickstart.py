"""Quickstart: run a benchmark under both JVM execution modes.

Runs the `compress` workload on the simulated JVM with the interpreter
and with the JIT compiler, and prints the comparison the whole paper is
built on: same program, same semantics, very different machine behavior.

Usage::

    python examples/quickstart.py [scale]
"""

import sys

from repro.analysis import run_vm


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "s1"

    print(f"running compress ({scale}) on the simulated JVM...\n")
    interp = run_vm("compress", scale=scale, mode="interp")
    jit = run_vm("compress", scale=scale, mode="jit")

    assert interp.stdout == jit.stdout, "modes must agree semantically"
    print(f"program output          : {interp.stdout}")
    print(f"bytecodes executed      : {interp.bytecodes_executed:,}")
    print()
    print(f"{'':24s}{'interpreter':>14s}{'JIT':>14s}")
    print(f"{'cycles':24s}{interp.cycles:>14,}{jit.cycles:>14,}")
    print(f"{'native instructions':24s}{interp.instructions:>14,}"
          f"{jit.instructions:>14,}")
    print(f"{'translate cycles':24s}{interp.translate_cycles:>14,}"
          f"{jit.translate_cycles:>14,}")
    print(f"{'methods compiled':24s}{interp.methods_compiled:>14}"
          f"{jit.methods_compiled:>14}")
    print(f"{'classes loaded':24s}{interp.classes_loaded:>14}"
          f"{jit.classes_loaded:>14}")
    print()
    speedup = interp.cycles / jit.cycles
    xlate = 100 * jit.translate_cycles / jit.cycles
    print(f"JIT speedup over interpretation : {speedup:.2f}x")
    print(f"share of JIT run spent translating : {xlate:.1f}%")
    print()
    print("Next: python -m repro.experiments fig1   (the full Figure 1 study)")


if __name__ == "__main__":
    main()
