"""Authoring a workload in the textual assembly syntax.

The same program as examples/custom_workload.py's spirit, but written as
assembly text, then inspected with the bytecode lister and the native
trace disassembler — the debugging workflow for workload authors.

Usage::

    python examples/assembler_demo.py
"""

from repro.isa.asm import assemble, list_method
from repro.native.disasm import disassemble, format_region_profile
from repro.vm import InterpretOnly, JavaVM

SOURCE = """
; gcd(1071, 462) by repeated subtraction, then print it
.class demo/Gcd
.method gcd static returns argc=2
loop:
    iload 0
    iload 1
    if_icmpeq done
    iload 0
    iload 1
    if_icmplt second
    iload 0
    iload 1
    isub
    istore 0
    goto loop
second:
    iload 1
    iload 0
    isub
    istore 1
    goto loop
done:
    iload 0
    ireturn
.end
.method main static
    getstatic java/lang/System out
    iconst 1071
    iconst 462
    invokestatic demo/Gcd gcd 2 ret
    invokevirtual java/io/PrintStream printlnInt 1 void
    return
.end
"""


def main() -> None:
    program = assemble(SOURCE)
    print("bytecode listing:")
    print(list_method(program.get_class("demo/Gcd").methods["gcd"]))

    vm = JavaVM(program, strategy=InterpretOnly(), record=True)
    result = vm.run()
    print(f"\nprogram output: {result.stdout}   "
          f"({result.bytecodes_executed} bytecodes, "
          f"{result.instructions:,} native instructions)")

    print("\nfirst native instructions of the run (class loading):")
    print(disassemble(result.trace, start=0, count=10))

    print("\nwhere the run's references landed:")
    print(format_region_profile(result.trace))


if __name__ == "__main__":
    main()
