"""Synchronization designs head to head (Section 5).

Runs a synchronization-heavy benchmark under the JDK 1.1.6 monitor
cache, 24-bit thin locks and the 1-bit variant, showing the case mix
and where the thin lock's ~2x win comes from.

Usage::

    python examples/lock_designs.py [benchmark] [scale]
"""

import sys

from repro.analysis import run_vm


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "jack"
    scale = sys.argv[2] if len(sys.argv) > 2 else "s1"

    print(f"lock designs on {benchmark} ({scale}), JIT mode\n")
    results = {}
    for mgr in ("monitor-cache", "thin-lock", "one-bit-lock"):
        results[mgr] = run_vm(benchmark, scale=scale, mode="jit",
                              lock_manager=mgr, profile=False)

    mc = results["monitor-cache"]
    counts = mc.sync["case_counts"]
    total = sum(counts.values()) or 1
    print("acquisition case mix (same for every design):")
    for case, label in (("a", "unlocked"), ("b", "recursive < 256"),
                        ("c", "recursive >= 256"), ("d", "contended")):
        print(f"  ({case}) {label:18s}: {counts[case]:>6} "
              f"({100 * counts[case] / total:.1f}%)")

    print(f"\n{'design':16s}{'sync cycles':>14s}{'share of run':>14s}"
          f"{'speedup':>10s}")
    for mgr, r in results.items():
        share = 100 * r.sync_cycles / r.cycles
        speedup = mc.sync_cycles / max(1, r.sync_cycles)
        print(f"{mgr:16s}{r.sync_cycles:>14,}{share:>13.1f}%"
              f"{speedup:>9.2f}x")

    print("\nEvery design agrees semantically:",
          all(r.stdout == mc.stdout for r in results.values()))
    print("The thin lock removes the global cache lock + hash + chain walk")
    print("from cases (a)/(b); the 1-bit variant keeps most of the win for")
    print("one header bit by fast-pathing only case (a).")


if __name__ == "__main__":
    main()
